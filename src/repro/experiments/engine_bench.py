"""Engine micro-benchmark: the four DES executor modes, head to head.

Each scenario loads one page once per engine mode —

* ``event_per_tick`` — the reference engine: every link refresh tick is
  its own heap event, no batching anywhere.
* ``fast_forward`` — the coalescing engine: consecutive silent refresh
  ticks run inline (single-stream batcher only).
* ``batched`` — the batched timeline executor: array-backed event
  storage, multi-stream homogeneous-run batch loop, memoised
  assignment, closed-form water-filling.
* ``event_driven`` — the batched executor plus the demand-driven
  browser: scanner polls become state-transition subscriptions, link
  refresh reschedules collapse through the lazy-tick flush, and
  consecutive microtask deferrals share one heap event.

— and asserts all four :class:`LoadMetrics` are bit-identical before
reporting anything.  The report then carries two kinds of numbers:

* **Deterministic counters** (heap events scheduled/executed/cancelled,
  link pokes, fast-forward steps, rate recomputations): pure functions
  of the event trace, stable across machines, pinned as CI goldens by
  ``repro bench engine --smoke``.
* **Wall-clock** (seconds per load, speedups): machine-dependent,
  recorded in ``BENCH_engine.json`` for the trajectory.  CI only asserts
  the deliberately conservative per-scenario *speedup floors* — batched
  must not lose its edge over the fast-forward engine — never the raw
  seconds.

Scenario shapes:

* ``corpus-news`` — a realistic synthetic News/Sports page under the
  push-all + fetch-asap configuration at LTE latency.  Thresholds
  (completions, preload-scanner watches) dominate, so coalescing is
  modest by design; this guards the realistic-workload counters.
* ``push-all-high-rtt`` — the slow-start-heavy shape from the paper's
  motivation: high RTT, lossy link, server push keeping many streams
  concurrent while windows are still opening.  Refresh ticks dominate
  and coalescing collapses the heap traffic (the >= 2x criterion).
* ``single-stream-drain`` — one long cwnd-limited body drain, the purest
  hot-path microbench: nearly every tick coalesces, so wall-clock
  speedup reflects the inline loop (the >= 1.5x criterion).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import audit
from repro.browser.engine import BrowserConfig, load_page
from repro.browser.metrics import LoadMetrics
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.core.push_policy import PushPolicy
from repro.core.scheduler import FetchAsapScheduler
from repro.core.server import vroom_servers
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint, PageSnapshot
from repro.pages.resources import ResourceSpec, ResourceType
from repro.replay.recorder import record_snapshot
from repro.replay.store import ReplayStore


@dataclass(frozen=True)
class EngineScenario:
    """One benchmarked page/network shape."""

    name: str
    description: str
    #: "corpus" uses a generated News/Sports page; "synthetic" builds a
    #: root document plus ``images`` bodies of ``image_bytes`` each.
    kind: str
    images: int = 0
    image_bytes: int = 0
    #: None keeps the :class:`NetworkConfig` default (LTE).
    base_rtt: Optional[float] = None
    loss_rate: float = 0.0


SCENARIOS: Tuple[EngineScenario, ...] = (
    EngineScenario(
        name="corpus-news",
        description="realistic News/Sports page, push-all + fetch-asap, LTE",
        kind="corpus",
    ),
    EngineScenario(
        name="push-all-high-rtt",
        description="8 large pushed bodies, 500 ms RTT, 3% loss (slow-start-heavy)",
        kind="synthetic",
        images=8,
        image_bytes=900_000,
        base_rtt=0.5,
        loss_rate=0.03,
    ),
    EngineScenario(
        name="single-stream-drain",
        description="one 40 MB body, 200 ms RTT, 3% loss (pure hot-path drain)",
        kind="synthetic",
        images=1,
        image_bytes=40_000_000,
        base_rtt=0.2,
        loss_rate=0.03,
    ),
)

#: Counter keys copied from ``LoadMetrics.engine_counters`` into reports.
COUNTER_KEYS: Tuple[str, ...] = (
    "events_scheduled",
    "events_executed",
    "events_cancelled",
    "heap_compactions",
    "inline_advances",
    "link_pokes",
    "link_fast_forward_steps",
    "link_rate_recomputes",
    "link_batch_runs",
    "link_batch_steps",
    "link_wf_fast_hits",
    "link_tick_keeps",
    "soon_coalesced",
    "browser_wakeups",
    "scanner_polls_elided",
)

#: The engine modes each scenario runs under, as
#: ``(name, link_fast_forward, batched_timeline, event_driven_browser)``.
#: The legacy modes force ``batched_timeline`` and
#: ``event_driven_browser`` *off* explicitly — both default on in
#: :class:`NetworkConfig` — so ``fast_forward`` stays the frozen PR 5
#: engine and ``batched`` the frozen PR 6 engine that the event-driven
#: browser is measured against.
MODES: Tuple[Tuple[str, bool, bool, bool], ...] = (
    ("event_per_tick", False, False, False),
    ("fast_forward", True, False, False),
    ("batched", True, True, False),
    ("event_driven", True, True, True),
)


def _scenario_page(scenario: EngineScenario) -> PageBlueprint:
    if scenario.kind == "corpus":
        return news_sports_corpus(count=1)[0]
    page = PageBlueprint(
        name=f"bench_{scenario.name.replace('-', '_')}", root="bench_root"
    )
    root = page.add(
        ResourceSpec(
            name="bench_root",
            rtype=ResourceType.HTML,
            domain="bench.com",
            size=60_000,
            parent=None,
            cacheable=False,
        )
    )
    for index in range(scenario.images):
        page.add(
            ResourceSpec(
                name=f"bench_img{index}",
                rtype=ResourceType.IMAGE,
                domain="bench.com",
                size=scenario.image_bytes,
                parent=root.name,
                position=0.1,
            )
        )
    return page


def _materialize(
    scenario: EngineScenario,
) -> Tuple[PageBlueprint, PageSnapshot, ReplayStore]:
    page = _scenario_page(scenario)
    snapshot = page.materialize(LoadStamp(when_hours=DEFAULT_EVAL_HOUR))
    return page, snapshot, record_snapshot(snapshot)


def _load_once(
    page: PageBlueprint,
    snapshot: PageSnapshot,
    store: ReplayStore,
    scenario: EngineScenario,
    fast_forward: bool,
    batched: bool,
    event_driven: bool,
) -> Tuple[LoadMetrics, float]:
    """One push-all + fetch-asap load; returns (metrics, wall seconds)."""
    servers = vroom_servers(
        page, snapshot, store, push_policy=PushPolicy.ALL_LOCAL
    )
    net_kwargs: Dict[str, object] = {
        "h2_scheduling": StreamScheduling.FAIR,
        "loss_rate": scenario.loss_rate,
        "link_fast_forward": fast_forward,
        "batched_timeline": batched,
        "event_driven_browser": event_driven,
    }
    if scenario.base_rtt is not None:
        net_kwargs["base_rtt"] = scenario.base_rtt
    started = time.perf_counter()
    metrics = load_page(
        snapshot,
        servers,
        NetworkConfig(**net_kwargs),
        BrowserConfig(when_hours=DEFAULT_EVAL_HOUR),
        policy=FetchAsapScheduler(),
    )
    return metrics, time.perf_counter() - started


def bench_scenario(scenario: EngineScenario, repeats: int = 3) -> dict:
    """Benchmark one scenario; raises if any mode ever diverges."""
    page, snapshot, store = _materialize(scenario)
    wall: Dict[str, float] = {}
    metrics: Dict[str, LoadMetrics] = {}
    for mode, fast_forward, batched, event_driven in MODES:
        best = None
        for _ in range(max(1, repeats)):
            result, elapsed = _load_once(
                page,
                snapshot,
                store,
                scenario,
                fast_forward,
                batched,
                event_driven,
            )
            metrics[mode] = result
            best = elapsed if best is None else min(best, elapsed)
        wall[mode] = best or 0.0
    reference = metrics["event_per_tick"]
    for mode, _, _, _ in MODES[1:]:
        if metrics[mode] != reference:
            raise AssertionError(
                f"scenario {scenario.name!r}: {mode} diverged from the "
                f"event-per-tick engine (plt {reference.plt!r} vs "
                f"{metrics[mode].plt!r})"
            )
    counters = {
        mode: {
            key: metrics[mode].engine_counters[key] for key in COUNTER_KEYS
        }
        for mode, _, _, _ in MODES
    }
    scheduled_ff = max(1, counters["fast_forward"]["events_scheduled"])
    scheduled_batched = max(1, counters["batched"]["events_scheduled"])
    scheduled_ed = max(1, counters["event_driven"]["events_scheduled"])
    return {
        "scenario": scenario.name,
        "description": scenario.description,
        "plt": reference.plt,
        "bit_identical": True,
        "counters_event_per_tick": counters["event_per_tick"],
        "counters_fast_forward": counters["fast_forward"],
        "counters_batched": counters["batched"],
        "counters_event_driven": counters["event_driven"],
        "event_reduction": (
            counters["event_per_tick"]["events_scheduled"] / scheduled_ff
        ),
        "batched_event_reduction": (
            counters["event_per_tick"]["events_scheduled"]
            / scheduled_batched
        ),
        #: The PR criterion: heap traffic of the demand-driven browser
        #: vs the reference engine on the same page.
        "event_reduction_event_driven": (
            counters["event_per_tick"]["events_scheduled"] / scheduled_ed
        ),
        "wall_event_per_tick_sec": wall["event_per_tick"],
        "wall_fast_forward_sec": wall["fast_forward"],
        "wall_batched_sec": wall["batched"],
        "wall_event_driven_sec": wall["event_driven"],
        "wall_speedup": (
            wall["event_per_tick"] / wall["fast_forward"]
            if wall["fast_forward"] > 0
            else 0.0
        ),
        #: The PR 6 criterion: batched executor vs the frozen PR 5 engine.
        "wall_batched_speedup": (
            wall["fast_forward"] / wall["batched"]
            if wall["batched"] > 0
            else 0.0
        ),
        "wall_batched_vs_event_per_tick": (
            wall["event_per_tick"] / wall["batched"]
            if wall["batched"] > 0
            else 0.0
        ),
        #: Event-driven browser vs the frozen PR 6 batched executor.
        "wall_event_driven_speedup": (
            wall["batched"] / wall["event_driven"]
            if wall["event_driven"] > 0
            else 0.0
        ),
        "wall_event_driven_vs_event_per_tick": (
            wall["event_per_tick"] / wall["event_driven"]
            if wall["event_driven"] > 0
            else 0.0
        ),
    }


def engine_benchmark(
    scenarios: Tuple[EngineScenario, ...] = SCENARIOS, repeats: int = 3
) -> dict:
    """Run every scenario; returns the ``BENCH_engine.json`` payload."""
    return {
        "benchmark": "engine",
        "scenarios": [
            bench_scenario(scenario, repeats=repeats)
            for scenario in scenarios
        ],
    }


#: Golden deterministic counters per scenario, asserted by ``--smoke``.
#: Any hot-path change that alters the event trace shows up here —
#: without the flakiness of asserting wall-clock in CI.  Regenerate by
#: running ``repro bench engine --smoke`` and copying the printed
#: counters after verifying the change is intentional.
SMOKE_GOLDENS: Dict[str, Dict[str, int]] = {
    "corpus-news": {
        "events_scheduled_event_per_tick": 1636,
        "events_scheduled_fast_forward": 1631,
        "events_scheduled_batched": 1631,
        "events_scheduled_event_driven": 1004,
        "events_cancelled_event_driven": 46,
        "link_pokes": 553,
        "link_fast_forward_steps": 5,
        "link_batch_runs": 1,
        "link_batch_steps": 2,
        "link_wf_fast_hits": 60,
        "link_batch_runs_event_driven": 2,
        "link_batch_steps_event_driven": 3,
        "link_tick_keeps": 1,
        "soon_coalesced": 113,
        "browser_wakeups": 2,
        "scanner_polls_elided": 259,
    },
    "push-all-high-rtt": {
        "events_scheduled_event_per_tick": 317,
        "events_scheduled_fast_forward": 110,
        "events_scheduled_batched": 110,
        "events_scheduled_event_driven": 64,
        "events_cancelled_event_driven": 1,
        "link_pokes": 246,
        "link_fast_forward_steps": 207,
        "link_batch_runs": 3,
        "link_batch_steps": 204,
        "link_wf_fast_hits": 0,
        "link_batch_runs_event_driven": 3,
        "link_batch_steps_event_driven": 204,
        "link_tick_keeps": 0,
        "soon_coalesced": 22,
        "browser_wakeups": 1,
        "scanner_polls_elided": 0,
    },
    "single-stream-drain": {
        "events_scheduled_event_per_tick": 1281,
        "events_scheduled_fast_forward": 27,
        "events_scheduled_batched": 27,
        "events_scheduled_event_driven": 23,
        "events_cancelled_event_driven": 1,
        "link_pokes": 1266,
        "link_fast_forward_steps": 1254,
        "link_batch_runs": 2,
        "link_batch_steps": 1251,
        "link_wf_fast_hits": 0,
        "link_batch_runs_event_driven": 2,
        "link_batch_steps_event_driven": 1251,
        "link_tick_keeps": 0,
        "soon_coalesced": 1,
        "browser_wakeups": 1,
        "scanner_polls_elided": 0,
    },
}

#: Minimum acceptable ``wall_batched_speedup`` (batched vs the PR 5
#: fast-forward engine) per scenario.  Deliberately far below the
#: steady-state measurements (≈1.45x / 1.40x / 1.10x on the reference
#: container) so shared-runner noise cannot trip CI, while an actual
#: loss of the batched executor's edge — a regression back to PR 5
#: wall-clock — still fails the smoke job.
SPEEDUP_FLOORS: Dict[str, float] = {
    "corpus-news": 1.05,
    "push-all-high-rtt": 1.05,
    "single-stream-drain": 0.90,
}

#: Minimum acceptable ``wall_event_driven_speedup`` (event-driven
#: browser vs the frozen PR 6 batched engine) per scenario.  On the
#: tick-dominated shapes the event-driven engine wins outright
#: (≈1.20x / 1.18x steady-state on an idle reference container), but
#: those loads finish in single-digit milliseconds and on a busy
#: machine the ratio hovers near parity — so, like the PR 6 floors
#: above, these sit deliberately far below the measurements (≥25%
#: margin) to keep shared-runner noise out of CI while a real
#: regression (the event-driven engine becoming meaningfully *slower*
#: than batched) still fails.  On ``corpus-news`` the heap collapse is
#: real (1.63x fewer events) but the removed events were *cheap* — the
#: load is assignment-bound (``_assign_and_horizon_batched``), so
#: wall-clock is parity by design and the floor only guards against an
#: actual regression.  See ``docs/PERFORMANCE.md`` for the full
#: census.
EVENT_DRIVEN_SPEEDUP_FLOORS: Dict[str, float] = {
    "corpus-news": 0.75,
    "push-all-high-rtt": 0.80,
    "single-stream-drain": 0.75,
}


def smoke_counters(report: dict) -> Dict[str, Dict[str, int]]:
    """The golden-comparable slice of an :func:`engine_benchmark` report."""
    observed: Dict[str, Dict[str, int]] = {}
    for row in report["scenarios"]:
        batched = row["counters_batched"]
        event_driven = row["counters_event_driven"]
        observed[row["scenario"]] = {
            "events_scheduled_event_per_tick": row[
                "counters_event_per_tick"
            ]["events_scheduled"],
            "events_scheduled_fast_forward": row["counters_fast_forward"][
                "events_scheduled"
            ],
            "events_scheduled_batched": batched["events_scheduled"],
            "events_scheduled_event_driven": event_driven[
                "events_scheduled"
            ],
            "events_cancelled_event_driven": event_driven[
                "events_cancelled"
            ],
            "link_pokes": row["counters_fast_forward"]["link_pokes"],
            "link_fast_forward_steps": row["counters_fast_forward"][
                "link_fast_forward_steps"
            ],
            "link_batch_runs": batched["link_batch_runs"],
            "link_batch_steps": batched["link_batch_steps"],
            "link_wf_fast_hits": batched["link_wf_fast_hits"],
            "link_batch_runs_event_driven": event_driven[
                "link_batch_runs"
            ],
            "link_batch_steps_event_driven": event_driven[
                "link_batch_steps"
            ],
            "link_tick_keeps": event_driven["link_tick_keeps"],
            "soon_coalesced": event_driven["soon_coalesced"],
            "browser_wakeups": event_driven["browser_wakeups"],
            "scanner_polls_elided": event_driven["scanner_polls_elided"],
        }
    return observed


def profile_scenario(
    stats_path: str,
    scenario_name: str = "corpus-news",
    loads: int = 5,
    top: int = 25,
    mode: str = "event_driven",
) -> str:
    """cProfile ``loads`` loads of one scenario under one engine mode.

    ``mode`` is any :data:`MODES` name (``event_per_tick``,
    ``fast_forward``, ``batched``, ``event_driven``); the default
    profiles the full event-driven stack.  Dumps the raw ``pstats``
    data to ``stats_path`` (for ``snakeviz`` / ``pstats`` digging
    offline) and returns the top-``top`` cumulative table as text —
    the CI engine-bench job archives both, so every run carries the
    evidence of where the hot path's time actually went.
    """
    import cProfile
    import io
    import pstats

    scenario = next(
        item for item in SCENARIOS if item.name == scenario_name
    )
    try:
        _, fast_forward, batched, event_driven = next(
            row for row in MODES if row[0] == mode
        )
    except StopIteration:
        names = ", ".join(row[0] for row in MODES)
        raise ValueError(f"unknown engine mode {mode!r} (one of: {names})")
    page, snapshot, store = _materialize(scenario)

    def run() -> None:
        for _ in range(loads):
            _load_once(
                page, snapshot, store, scenario,
                fast_forward, batched, event_driven,
            )

    run()  # warm caches so the profile reflects steady state
    profiler = cProfile.Profile()
    profiler.enable()
    run()
    profiler.disable()
    profiler.dump_stats(stats_path)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def smoke_run() -> dict:
    """Best-of-three benchmark over every scenario (for CI).

    Counters are exact on any repeat count; three wall repeats keep the
    speedup-floor check out of single-sample noise.
    """
    return engine_benchmark(repeats=3)


#: Counters that measure which *implementation* ran, not the trace.
#: Under ``REPRO_AUDIT=1`` the batch loops stand down (the generic loop
#: validates every step individually, so runs/steps read zero) and the
#: memoised allocator is bypassed (so the closed-form solver is hit a
#: different number of times).  These are not comparable to the goldens
#: there — but every trace-shaped counter (events, pokes, fast-forward
#: steps) must still match exactly, and that is what the audited smoke
#: run asserts.  Microtask batching also stands down under audit (the
#: seq-gap coalescing guard is an implementation shortcut the auditor
#: refuses), so the event-driven heap totals and the coalescing counter
#: shift by exactly the coalesced count; the demand-driven trace
#: counters (``browser_wakeups``, ``scanner_polls_elided``,
#: ``link_tick_keeps``, cancellations) stay pinned even when audited.
_IMPLEMENTATION_COUNTERS = (
    "link_batch_runs",
    "link_batch_steps",
    "link_wf_fast_hits",
    "link_batch_runs_event_driven",
    "link_batch_steps_event_driven",
    "events_scheduled_event_driven",
    "soon_coalesced",
)


def smoke_check(report: dict) -> List[str]:
    """Mismatches between a benchmark report and the pinned goldens."""
    problems: List[str] = []
    observed = smoke_counters(report)
    audited = audit.ENABLED
    speedups = {
        row["scenario"]: row["wall_batched_speedup"]
        for row in report["scenarios"]
    }
    ed_speedups = {
        row["scenario"]: row.get("wall_event_driven_speedup")
        for row in report["scenarios"]
    }
    for scenario, golden in SMOKE_GOLDENS.items():
        actual = observed.get(scenario)
        if actual is None:
            problems.append(f"{scenario}: missing from report")
            continue
        for field, expected in golden.items():
            if audited and field in _IMPLEMENTATION_COUNTERS:
                continue
            if actual.get(field) != expected:
                problems.append(
                    f"{scenario}.{field}: expected {expected!r}, "
                    f"got {actual.get(field)!r}"
                )
        if audited:
            # Audited walls time the stand-down engine plus per-step
            # validation, not the batched executor; no floor applies.
            continue
        floor = SPEEDUP_FLOORS.get(scenario)
        speedup = speedups.get(scenario)
        if floor is not None and speedup is not None and speedup < floor:
            problems.append(
                f"{scenario}.wall_batched_speedup: {speedup:.2f}x fell "
                f"below the {floor:.2f}x floor — the batched executor "
                "lost its wall-clock edge over the fast-forward engine"
            )
        ed_floor = EVENT_DRIVEN_SPEEDUP_FLOORS.get(scenario)
        ed_speedup = ed_speedups.get(scenario)
        if (
            ed_floor is not None
            and ed_speedup is not None
            and ed_speedup < ed_floor
        ):
            problems.append(
                f"{scenario}.wall_event_driven_speedup: {ed_speedup:.2f}x "
                f"fell below the {ed_floor:.2f}x floor — the event-driven "
                "browser lost its wall-clock edge over the batched engine"
            )
    return problems

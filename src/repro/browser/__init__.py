"""Browser substrate: CPU model, cache, parse/blocking semantics, metrics."""

from repro.browser.cpu import CpuProfile, DEVICE_PROFILES
from repro.browser.cache import BrowserCache, CacheEntry
from repro.browser.cookies import CookieJar
from repro.browser.engine import BrowserConfig, PageLoadEngine, load_page
from repro.browser.metrics import LoadMetrics, ResourceTimeline

__all__ = [
    "CpuProfile",
    "DEVICE_PROFILES",
    "BrowserCache",
    "CacheEntry",
    "CookieJar",
    "BrowserConfig",
    "PageLoadEngine",
    "load_page",
    "LoadMetrics",
    "ResourceTimeline",
]

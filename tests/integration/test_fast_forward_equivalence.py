"""Fast-forward equivalence: coalesced hot path vs event-per-tick.

The link's fast-forward mode (``NetworkConfig.link_fast_forward``) may
only ever be a *performance* knob: every observable — PLT, speed index,
byte counts, timelines, the critical path — must be bit-identical to the
event-per-tick engine, because inline advances are restricted to windows
where no other event could observe the clock.  This suite sweeps corpus
pages × configurations × loss × fault plans and asserts full
:class:`LoadMetrics` equality (``engine_counters`` is excluded from
dataclass comparison by design — the counters are *supposed* to differ).
"""

import pytest

from repro import audit
from repro.baselines.configs import run_config
from repro.browser.engine import BrowserConfig, load_page
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.core.push_policy import PushPolicy
from repro.core.scheduler import FetchAsapScheduler
from repro.core.server import vroom_servers
from repro.net.faults import ResiliencePolicy, hint_fault_plan
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling

CONFIGS = ["http2", "vroom", "push-all-fetch-asap"]

#: fault plan × resilience pairs: faulted runs need retries/timeouts or
#: the load legitimately wedges (that guard is its own test elsewhere).
FAULT_PLANS = {
    "no-faults": (None, None),
    "hint-faults": (hint_fault_plan(0.3, seed=7), ResiliencePolicy()),
}


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("faults", sorted(FAULT_PLANS))
def test_metrics_bit_identical(corpus, stamp, config, faults):
    """off == on for every config × fault plan, across two pages."""
    from repro.replay.recorder import record_snapshot

    fault_plan, resilience = FAULT_PLANS[faults]
    for page in corpus[:2]:
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        off = run_config(
            config,
            page,
            snapshot,
            store,
            fault_plan=fault_plan,
            resilience=resilience,
            link_fast_forward=False,
        )
        on = run_config(
            config,
            page,
            snapshot,
            store,
            fault_plan=fault_plan,
            resilience=resilience,
            link_fast_forward=True,
        )
        assert off == on, (
            f"{page.name} under {config!r}/{faults}: fast-forward "
            f"changed observables (plt {off.plt!r} vs {on.plt!r})"
        )


@pytest.mark.parametrize("loss_rate", [0.0, 0.02])
def test_lossy_link_bit_identical(page, snapshot, store, loss_rate):
    """Loss RNG draws must line up between coalesced and per-tick runs."""

    def run(fast_forward):
        servers = vroom_servers(
            page, snapshot, store, push_policy=PushPolicy.ALL_LOCAL
        )
        return load_page(
            snapshot,
            servers,
            NetworkConfig(
                h2_scheduling=StreamScheduling.FAIR,
                loss_rate=loss_rate,
                link_fast_forward=fast_forward,
            ),
            BrowserConfig(when_hours=DEFAULT_EVAL_HOUR),
            policy=FetchAsapScheduler(),
        )

    assert run(False) == run(True)


def test_audit_run_passes_and_stays_identical(page, snapshot, store):
    """REPRO_AUDIT=1 end to end: the invariant hooks (including
    fast-forward-bounds) hold, and arming them perturbs nothing."""
    plain = run_config("vroom", page, snapshot, store, link_fast_forward=True)
    audit.enable()
    try:
        audited = run_config(
            "vroom", page, snapshot, store, link_fast_forward=True
        )
    finally:
        audit.disable()
    assert audited == plain


def test_counters_surface_on_metrics(page, snapshot, store):
    """LoadMetrics carries the deterministic engine counter block."""
    metrics = run_config(
        "push-all-fetch-asap", page, snapshot, store, link_fast_forward=True
    )
    counters = metrics.engine_counters
    assert counters["events_scheduled"] > 0
    assert counters["events_executed"] > 0
    assert counters["link_pokes"] > 0
    assert counters["inline_advances"] >= counters["link_fast_forward_steps"]
    off = run_config(
        "push-all-fetch-asap", page, snapshot, store, link_fast_forward=False
    )
    assert off.engine_counters["link_fast_forward_steps"] == 0
    assert off.engine_counters["inline_advances"] == 0
    # pokes mirror one-per-tick no matter the mode: coalesced steps
    # replace heap events one for one, never skipping or adding work.
    assert off.engine_counters["link_pokes"] == counters["link_pokes"]

"""Resilience study: fault intensity × configuration.

Vroom's hints and pushes come from servers whose dependency knowledge can
be stale or wrong (PAPER Secs 4.2, 6.4), and measurements of deployed
HTTP/2 push report failures and wasted transfers as the norm.  This study
injects a seeded :func:`~repro.net.faults.hint_fault_plan` — server
errors, response stalls, and connection drops aimed at hint-driven
prefetches — at increasing intensities, with client-side timeouts and
exponential-backoff retries enabled, and reports both the PLT
distribution and the resilience counters per configuration.

The zero-rate point doubles as a regression guard: an empty fault plan
performs no rolls, so its loads are bit-identical to an unfaulted sweep.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.calibration import DEFAULT_EVAL_HOUR
from repro.experiments.parallel import run_sweep
from repro.net.faults import ResiliencePolicy, hint_fault_plan
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.cache import SnapshotCache

#: Hint-fetch failure probabilities swept by default (0 = control).
DEFAULT_FAULT_RATES: Sequence[float] = (0.0, 0.05, 0.10, 0.20)

#: Configurations compared by default: the hint-free baseline (faults
#: target hints, so it is a control) and full Vroom.
DEFAULT_CONFIGS: Sequence[str] = ("http2", "vroom")

DEFAULT_RESILIENCE = ResiliencePolicy(
    request_timeout=5.0, max_retries=2, retry_backoff=0.25
)

#: Counters accumulated across a sweep, straight off LoadMetrics.
COUNTER_FIELDS = (
    "retries",
    "timeouts",
    "connection_drops",
    "error_responses",
    "failed_fetches",
    "fault_wasted_bytes",
)


def resilience_sweep(
    count: int = 6,
    rates: Sequence[float] = DEFAULT_FAULT_RATES,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    resilience: ResiliencePolicy = DEFAULT_RESILIENCE,
    seed: int = 0,
    workers: Optional[int] = None,
    cache: Optional[SnapshotCache] = None,
) -> Dict[float, Dict[str, dict]]:
    """Sweep fault intensity × configuration.

    Returns ``{rate: {config: row}}`` where each row carries the per-page
    ``"plt"`` list plus the summed resilience counters.  Snapshots are
    fault-independent, so every rate shares one cached (snapshot, store)
    pair per page via the PR-1 snapshot cache.
    """
    pages = news_sports_corpus(count)
    stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    active_cache = cache if cache is not None else SnapshotCache()
    configs = list(configs)
    out: Dict[float, Dict[str, dict]] = {}
    for rate in rates:
        plan = hint_fault_plan(rate, seed=seed)
        counters = {
            config: dict.fromkeys(COUNTER_FIELDS, 0) for config in configs
        }

        def accumulate(page, config, metrics, rows=counters):
            row = rows[config]
            for field in COUNTER_FIELDS:
                row[field] += getattr(metrics, field)

        run, _ = run_sweep(
            pages,
            configs,
            stamp=stamp,
            workers=workers,
            cache=active_cache,
            per_page_hook=accumulate,
            config_kwargs={"fault_plan": plan, "resilience": resilience},
        )
        out[rate] = {
            config: {"plt": list(run.series(config)), **counters[config]}
            for config in configs
        }
    return out

"""Smoke tests for the sensitivity sweep."""

from repro.experiments.sensitivity import sensitivity_sweep


def test_sweep_structure():
    result = sensitivity_sweep(count=2, multipliers=(1.0,))
    assert set(result) == {"bandwidth", "rtt", "cpu_speed"}
    for ratios in result.values():
        assert set(ratios) == {1.0}
        assert 0.3 < ratios[1.0] < 1.2


def test_vroom_wins_at_calibrated_point():
    result = sensitivity_sweep(count=3, multipliers=(1.0,))
    for knob, ratios in result.items():
        assert ratios[1.0] < 1.0, knob

"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``load``      simulate one page under one or more configurations
``waterfall`` render a page load as a text waterfall
``audit``     show what a Vroom server would return for a page
``lint``      run the determinism & layering analyzer over ``src/repro``
``figure``    regenerate one of the paper's figures (``--workers`` fans
              its sweeps out over processes)
``sweep``     run a corpus × configs sweep on the parallel engine and
              print per-config medians plus throughput
``resilience`` sweep hint-fetch fault intensity × configs and print PLT
              medians plus retry/timeout/failure counters
``service``   simulate the multi-tenant hint-serving backend (sharded
              store + offline-resolution scheduler) and write
              ``BENCH_service.json``
``longrun``   continuous-operation harness: stream a declarative
              :class:`~repro.scenario.spec.ScenarioSpec` through the
              service for simulated days with checkpoint/resume and
              paired A/B lanes; writes ``BENCH_longrun.json``
``bench``     engine micro-benchmarks; ``bench engine`` compares the
              four DES executor modes (event-per-tick, fast-forward,
              batched, event-driven) and writes ``BENCH_engine.json``
``configs``   list the available named configurations
``profiles``  list the available network profiles

The simulation commands (``load``, ``waterfall``, ``report``) accept
``--audit`` to arm the runtime invariant audit (:mod:`repro.audit`) for
the run; ``REPRO_AUDIT=1`` in the environment does the same.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.stats import Cdf
from repro.analysis.waterfall import render_waterfall, summarize_phases
from repro.baselines.configs import CONFIG_NAMES, run_config
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.pages.corpus import (
    accuracy_corpus,
    alexa_top100_corpus,
    alexa_top400_sample_corpus,
    news_sports_corpus,
)
from repro.pages.dynamics import LoadStamp
from repro.replay.recorder import record_snapshot

CORPORA = {
    "news": news_sports_corpus,
    "alexa100": alexa_top100_corpus,
    "alexa400": alexa_top400_sample_corpus,
    "accuracy": accuracy_corpus,
}


def _corpus_or_exit(corpus: str, count: int):
    """Build a corpus for a command, or explain why it can't.

    Returns the page list, or ``None`` after printing a clear error to
    stderr — the caller exits non-zero instead of crashing deep inside
    an experiment with a bare IndexError.
    """
    if count < 1:
        print(
            f"error: page count must be >= 1 (got {count})",
            file=sys.stderr,
        )
        return None
    builder = CORPORA.get(corpus)
    if builder is None:
        print(
            f"error: unknown corpus {corpus!r} "
            f"(available: {', '.join(sorted(CORPORA))})",
            file=sys.stderr,
        )
        return None
    pages = builder(count=count)
    if not pages:
        print(
            f"error: corpus {corpus!r} produced no pages for count={count}",
            file=sys.stderr,
        )
        return None
    return pages


def _page(args):
    if getattr(args, "blueprint", None):
        from repro.pages.serialization import load_blueprint

        return load_blueprint(args.blueprint)
    corpus = CORPORA[args.corpus](count=args.index + 1)
    return corpus[args.index]


def _stamp(args) -> LoadStamp:
    return LoadStamp(
        when_hours=DEFAULT_EVAL_HOUR,
        device=args.device,
        user=args.user,
    )


def _maybe_enable_audit(args) -> None:
    if getattr(args, "audit", False):
        from repro import audit

        audit.enable()


def _add_audit_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--audit",
        action="store_true",
        help="arm the runtime invariant audit (repro.audit) for this run",
    )


def _add_page_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--corpus", choices=sorted(CORPORA), default="news",
        help="which synthetic corpus to draw the page from",
    )
    parser.add_argument(
        "--index", type=int, default=0, help="page index within the corpus"
    )
    parser.add_argument("--device", default="nexus6")
    parser.add_argument("--user", default="user0")
    parser.add_argument(
        "--blueprint",
        default=None,
        help="load the page from a blueprint JSON file instead of a corpus",
    )


def cmd_load(args) -> int:
    _maybe_enable_audit(args)
    page = _page(args)
    snapshot = page.materialize(_stamp(args))
    store = record_snapshot(snapshot)
    print(
        f"page {page.name!r}: {len(snapshot.all_resources())} resources, "
        f"{snapshot.total_bytes() / 1e6:.2f} MB, "
        f"{len(snapshot.domains())} domains"
    )
    print(f"{'config':<24} {'PLT':>7} {'AFT':>7} {'SI':>7} {'waste':>8}")
    for config in args.configs:
        metrics = run_config(config, page, snapshot, store)
        print(
            f"{config:<24} {metrics.plt:6.2f}s {metrics.aft:6.2f}s "
            f"{metrics.speed_index:6.0f} {metrics.wasted_bytes / 1e3:6.0f}KB"
        )
    return 0


def cmd_waterfall(args) -> int:
    _maybe_enable_audit(args)
    page = _page(args)
    snapshot = page.materialize(_stamp(args))
    store = record_snapshot(snapshot)
    metrics = run_config(args.config, page, snapshot, store)
    print(render_waterfall(metrics, max_rows=args.rows))
    print()
    for key, value in summarize_phases(metrics).items():
        print(f"{key:<34} {value:,.3f}" if isinstance(value, float) else
              f"{key:<34} {value}")
    return 0


def cmd_audit(args) -> int:
    from repro.analysis.accuracy import predictable_partition, score_strategy
    from repro.core.resolver import ResolutionStrategy, VroomResolver
    from repro.pages.resources import Priority

    page = _page(args)
    stamp = _stamp(args)
    snapshot = page.materialize(stamp)
    resolver = VroomResolver(page)
    bundle = resolver.hints_for(snapshot.root, as_of_hours=stamp.when_hours)
    print(f"hints on {snapshot.root.url}:")
    for priority in Priority:
        urls = [h.url for h in bundle.by_priority(priority)]
        print(f"  {priority.name}: {len(urls)} URLs")
        for url in urls[: args.rows]:
            print(f"    {url}")
        if len(urls) > args.rows:
            print(f"    ... {len(urls) - args.rows} more")
    predictable, unpredictable, _ = predictable_partition(page, stamp)
    print(
        f"\npredictable subset: {len(predictable)} URLs; "
        f"left to client: {len(unpredictable)}"
    )
    result = score_strategy(page, stamp, ResolutionStrategy.VROOM)
    print(
        f"accuracy: FN {result.fn_rate:.1%}  FP {result.fp_rate:.1%} "
        "(fractions of the predictable subset)"
    )
    return 0


def cmd_figure(args) -> int:
    from repro.experiments import extensions, figures
    from repro.experiments.parallel import set_default_workers

    if args.workers is not None:
        # Figures call sweep_configs internally; raising the session
        # default parallelises those sweeps without touching each figure.
        set_default_workers(args.workers)
    name = args.name.replace("-", "_")
    func = getattr(figures, name, None) or getattr(extensions, name, None)
    if func is None:
        available = sorted(
            attr
            for module in (figures, extensions)
            for attr in vars(module)
            if not attr.startswith("_")
            and callable(getattr(module, attr))
            and attr not in ("LoadStamp",)
        )
        print(f"unknown figure {args.name!r}; available: {available}")
        return 2
    kwargs = {}
    if args.count is not None:
        kwargs["count"] = args.count
    result = func(**kwargs)
    _print_result(args.name, result)
    return 0


def _print_result(title: str, result) -> None:
    print(f"== {title} ==")
    if not isinstance(result, dict):
        print(result)
        return
    for key, value in result.items():
        if isinstance(value, list) and value and isinstance(value[0], float):
            print(Cdf(value).render(key))
        elif isinstance(value, dict):
            print(f"{key}:")
            for inner_key, inner_value in value.items():
                print(f"  {inner_key}: {inner_value}")
        else:
            print(f"{key}: {value}")


def cmd_report(args) -> int:
    """A full comparison report for one page across configurations."""
    from repro.analysis.critical_path import critical_path_composition
    from repro.analysis.waterfall import summarize_phases

    _maybe_enable_audit(args)
    page = _page(args)
    snapshot = page.materialize(_stamp(args))
    store = record_snapshot(snapshot)
    print(
        f"# Report: {page.name!r} — {len(snapshot.all_resources())} "
        f"resources, {snapshot.total_bytes() / 1e6:.2f} MB, "
        f"{len(snapshot.domains())} domains\n"
    )
    header = (
        f"{'config':<18} {'PLT':>7} {'AFT':>7} {'SI':>7} "
        f"{'cpu%':>5} {'net-frac':>9} {'waste':>8}"
    )
    print(header)
    results = {}
    for config in args.configs:
        metrics = run_config(config, page, snapshot, store)
        results[config] = metrics
        print(
            f"{config:<18} {metrics.plt:6.2f}s {metrics.aft:6.2f}s "
            f"{metrics.speed_index:6.0f} "
            f"{metrics.cpu_utilization:4.0%} "
            f"{metrics.network_wait_fraction:8.2f} "
            f"{metrics.wasted_bytes / 1e3:6.0f}KB"
        )
    print()
    for config, metrics in results.items():
        print(f"## {config}")
        composition = critical_path_composition(
            metrics, first_party_domain=f"{page.name}.com"
        )
        print(composition.describe())
        phases = summarize_phases(metrics)
        print(
            f"discovery done {phases['discovery_complete']:.2f}s, "
            f"fetches done {phases['fetch_complete']:.2f}s, "
            f"{phases['pushed']} pushed, {phases['cached']} cached\n"
        )
    return 0


def cmd_sweep(args) -> int:
    """Corpus × configs sweep on the parallel engine, with a perf line."""
    import json

    from repro.analysis.stats import median
    from repro.experiments.parallel import run_sweep

    pages = _corpus_or_exit(args.corpus, args.count)
    if pages is None:
        return 2
    stamp = LoadStamp(
        when_hours=DEFAULT_EVAL_HOUR, device=args.device, user=args.user
    )
    run, perf = run_sweep(
        pages, args.configs, stamp=stamp, workers=args.workers
    )
    print(
        f"swept {args.count} pages x {len(args.configs)} configs "
        f"({perf.jobs} jobs) with {perf.workers} workers "
        f"in {perf.elapsed:.2f}s ({perf.jobs_per_sec:.1f} jobs/s, "
        f"snapshot cache hit rate {perf.cache_hit_rate:.0%})"
    )
    print(f"{'config':<24} {'median PLT':>11}")
    for config in args.configs:
        print(f"{config:<24} {median(run.series(config)):10.2f}s")
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(perf.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"perf report written to {args.report}")
    return 0


def cmd_resilience(args) -> int:
    """Fault-injection sweep: intensity × configs, PLT plus counters."""
    import json

    from repro.analysis.stats import median
    from repro.experiments.resilience import resilience_sweep
    from repro.net.faults import ResiliencePolicy

    if _corpus_or_exit("news", args.count) is None:
        return 2
    result = resilience_sweep(
        count=args.count,
        rates=tuple(args.rates),
        configs=tuple(args.configs),
        resilience=ResiliencePolicy(
            request_timeout=args.timeout,
            max_retries=args.retries,
            retry_backoff=args.backoff,
        ),
        seed=args.seed,
        workers=args.workers,
    )
    print(
        f"{'rate':>5} {'config':<18} {'median PLT':>11} {'retries':>8} "
        f"{'timeouts':>9} {'drops':>6} {'5xx':>5} {'failed':>7} "
        f"{'waste':>8}"
    )
    for rate, rows in result.items():
        for config, row in rows.items():
            print(
                f"{rate:4.0%} {config:<18} "
                f"{median(row['plt']):10.2f}s "
                f"{row['retries']:8d} {row['timeouts']:9d} "
                f"{row['connection_drops']:6d} {row['error_responses']:5d} "
                f"{row['failed_fetches']:7d} "
                f"{row['fault_wasted_bytes'] / 1e3:6.0f}KB"
            )
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"resilience report written to {args.report}")
    return 0


def _print_service_scenarios(scenarios: dict) -> None:
    """Human summary of the fleet scenarios (kill/flash/reshard)."""
    kill = scenarios["kill_shard"]
    print(
        f"kill shard {kill['victim_shard']} "
        f"[{kill['down_at_hours']:.2f}h, {kill['up_at_hours']:.2f}h):"
    )
    for row in kill["rows"]:
        line = (
            f"  replication={row['replication']}: in-outage served "
            f"{row['window']['served_rate']:.2%}, "
            f"{row['totals']['failovers']} failover(s), "
            f"p999 {row['latency']['p999_ms']:.2f} ms"
        )
        bridge = row.get("bridge_window")
        if bridge:
            line += (
                f"; degraded precision {bridge['precision_mean']:.3f} / "
                f"recall {bridge['recall_mean']:.3f}"
            )
        print(line)
    flash = scenarios["flash_crowd"]
    print(
        f"flash crowd ×{flash['flash_multiplier']:.0f} at "
        f"{flash['flash_at_hours']:.2f}h:"
    )
    for row in flash["rows"]:
        print(
            f"  frontend cache {row['frontend_cache_entries']:2d}: "
            f"in-flash served {row['window']['served_rate']:.2%}, "
            f"{row['totals']['frontend_hits']} frontend hit(s), "
            f"p999 {row['latency']['p999_ms']:.2f} ms"
        )
    reshard = scenarios["reshard"]
    print(
        f"live reshard {reshard['shards_before']}→"
        f"{reshard['shards_after']} shards: payloads match "
        f"{reshard['payloads_match']} "
        f"(audited {reshard['audited']}), "
        f"{reshard['migration']['keys_moved']} key(s) moved over "
        f"{reshard['migration']['steps']} step(s)"
    )


def cmd_service(args) -> int:
    """Simulated hint-serving backend: workload, staleness sweep, bench."""
    import json

    from repro.experiments.service import (
        service_benchmark,
        smoke_check,
        smoke_run,
        smoke_scenarios,
    )

    _maybe_enable_audit(args)

    def write_report(payload) -> None:
        if not args.report:
            return
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"service report written to {args.report}")

    if args.smoke:
        report = smoke_run()
        totals = report["totals"]
        print(
            f"smoke: {totals['lookups']} lookups, "
            f"hit rate {totals['hit_rate']:.2%} "
            f"(stale {totals['stale_hit_rate']:.2%}), "
            f"{totals['evictions']} eviction(s)"
        )
        scenarios = smoke_scenarios()
        _print_service_scenarios(scenarios)
        write_report(
            {
                "benchmark": "service-smoke",
                "report": report,
                "scenarios": scenarios,
            }
        )
        problems = smoke_check(report, scenarios)
        for problem in problems:
            print(f"smoke mismatch — {problem}", file=sys.stderr)
        return 1 if problems else 0

    if args.lookups < 1:
        print(
            f"error: --lookups must be >= 1 (got {args.lookups})",
            file=sys.stderr,
        )
        return 2
    pages = _corpus_or_exit(args.corpus, args.pages)
    if pages is None:
        return 2
    payload = service_benchmark(
        pages,
        lookups=args.lookups,
        rate_per_hour=args.rate,
        shards=args.shards,
        shard_memory_bytes=args.shard_memory_kb * 1024,
        ttl_hours=args.ttl,
        freshness_hours=args.fresh,
        batch_period_hours=args.batch_period,
        crawl_budget_per_hour=args.budget,
        zipf_exponent=args.zipf,
        seed=args.seed,
        bridge_sample_every=args.bridge_every,
        budgets=tuple(args.budgets),
    )
    report = payload["report"]
    totals = report["totals"]
    latency = report["latency"]
    scheduler = report["scheduler"]
    print(
        f"served {totals['lookups']} lookups over "
        f"{report['config']['pages']} pages in "
        f"{report['duration_hours']:.2f} simulated hours"
    )
    print(
        f"hit rate {totals['hit_rate']:.2%} "
        f"(fresh {totals['fresh_hit_rate']:.2%}, "
        f"stale {totals['stale_hit_rate']:.2%}); "
        f"miss {totals['miss_rate']:.2%}"
    )
    print(
        f"lookup latency p50 {latency['p50_ms']:.2f} ms / "
        f"p99 {latency['p99_ms']:.2f} ms; "
        f"{totals['evictions']} eviction(s); "
        f"crawl budget {scheduler['budget_utilization']:.0%} used"
    )
    if "bridge" in payload:
        aggregate = payload["bridge"]["aggregate"]
        print(
            f"bridge ({aggregate['samples']} samples): served hints "
            f"precision {aggregate['precision_mean']:.3f} / "
            f"recall {aggregate['recall_mean']:.3f} "
            f"(oracle {aggregate['oracle_precision_mean']:.3f} / "
            f"{aggregate['oracle_recall_mean']:.3f}); "
            f"PLT {aggregate['plt_served_mean']:.2f}s served vs "
            f"{aggregate['plt_oracle_mean']:.2f}s oracle vs "
            f"{aggregate['plt_no_hints_mean']:.2f}s no hints"
        )
    staleness = payload["staleness"]
    print(f"{'budget/h':>9} {'stale-hit':>10} {'hit':>8}")
    for row in staleness["budgets"]:
        print(
            f"{row['crawl_budget_per_hour']:9.0f} "
            f"{row['stale_hit_rate']:9.2%} {row['hit_rate']:7.2%}"
        )
    print(
        "stale-hit rate monotone in budget: "
        f"{staleness['monotone_stale_hit_rate']}"
    )
    if "scenarios" in payload:
        _print_service_scenarios(payload["scenarios"])
    write_report(payload)
    return 0


def _print_longrun(payload) -> None:
    """Human summary of a longrun benchmark payload."""
    report = payload["report"]
    totals = report["totals"]
    resume = payload["resume"]
    ab = payload["ab"]
    perf = payload["perf"]
    print(
        f"longrun: {totals['lookups']} lookups over "
        f"{report['horizon_hours']:.1f} simulated hours "
        f"({len(report['rollups'])} rollup windows)"
    )
    print(
        f"hit rate {totals['hit_rate']:.2%} "
        f"(stale {totals['stale_hit_rate']:.2%}); "
        f"{totals['unavailable']} unavailable; "
        f"{totals['shard_wipes']} shard wipe(s), "
        f"{totals['failovers']} failover(s)"
    )
    digest = report["digest"]
    if digest["bits_per_entry"]:
        print(
            f"digest filter ({digest['bits_per_entry']} bits/entry): "
            f"{digest['filtered_lookups']} repeat visits, "
            f"{digest['filtered_urls']} hint URL(s) suppressed"
        )
    print(
        f"checkpoint/resume at {resume['checkpoint_at_hours']:.2f} h: "
        f"fingerprints match {resume['match']} "
        f"({resume['checkpoint_bytes']} bytes)"
    )
    served_delta = ab["summary"]["served_rate_delta"]
    print(
        f"A/B {ab['lane_a']['label']} vs {ab['lane_b']['label']} "
        f"{ab['lane_b']['overrides']}: served-rate delta "
        f"mean {served_delta['mean']:+.4f} "
        f"(min {served_delta['min']:+.4f}) over "
        f"{len(ab['windows'])} paired windows"
    )
    print(
        f"peak RSS {perf['peak_rss_kb'] / 1024:.0f} MB, "
        f"{perf['lookups_per_s']:.0f} lookups/s"
    )


def cmd_longrun(args) -> int:
    """Continuous operation: ScenarioSpec through the streaming runner."""
    import json
    from dataclasses import replace

    from repro.experiments.longrun_bench import (
        DEFAULT_SPEC,
        longrun_benchmark,
        smoke_check,
        smoke_run,
    )

    _maybe_enable_audit(args)

    def write_report(payload) -> None:
        if not args.report:
            return
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"longrun report written to {args.report}")

    if args.smoke:
        payload = smoke_run()
        _print_longrun(payload)
        write_report(payload)
        problems = smoke_check(payload)
        for problem in problems:
            print(f"smoke mismatch — {problem}", file=sys.stderr)
        return 1 if problems else 0

    if args.hours <= 0:
        print(
            f"error: --hours must be > 0 (got {args.hours})",
            file=sys.stderr,
        )
        return 2
    overrides = {"horizon_hours": args.hours, "corpus": args.corpus}
    for dest, field in (
        ("pages", "pages"),
        ("rate", "rate_per_hour"),
        ("shards", "shards"),
        ("replication", "replication"),
        ("digest_bits", "digest_filter_bits"),
        ("cycle_every", "shard_cycle_every_hours"),
        ("cycle_down", "shard_cycle_down_hours"),
        ("rollup", "rollup_hours"),
    ):
        value = getattr(args, dest)
        if value is not None:
            overrides[field] = value
    try:
        spec = replace(DEFAULT_SPEC, **overrides)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.checkpoint_at is not None and not (
        0 < args.checkpoint_at < spec.horizon_hours
    ):
        print(
            f"error: --checkpoint-at must fall inside the horizon "
            f"(0, {spec.horizon_hours}) (got {args.checkpoint_at})",
            file=sys.stderr,
        )
        return 2
    payload = longrun_benchmark(
        spec, checkpoint_at_hours=args.checkpoint_at
    )
    _print_longrun(payload)
    write_report(payload)
    if not payload["resume"]["match"]:
        print(
            "error: resumed run diverged from the straight run "
            f"({payload['resume']['resumed_fingerprint']} != "
            f"{payload['resume']['straight_fingerprint']})",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench(args) -> int:
    """Engine micro-benchmark: the four executor modes, head to head."""
    import json

    from repro.experiments.engine_bench import (
        engine_benchmark,
        profile_scenario,
        smoke_check,
        smoke_run,
    )

    _maybe_enable_audit(args)

    def write_report(payload) -> None:
        if not args.report:
            return
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"engine report written to {args.report}")

    def print_rows(report) -> None:
        print(
            f"{'scenario':<22} {'events ept':>10} {'events bat':>10} "
            f"{'events ed':>10} {'ed reduc':>8} {'bat spdup':>9} "
            f"{'ed spdup':>8}"
        )
        for row in report["scenarios"]:
            print(
                f"{row['scenario']:<22} "
                f"{row['counters_event_per_tick']['events_scheduled']:>10} "
                f"{row['counters_batched']['events_scheduled']:>10} "
                f"{row['counters_event_driven']['events_scheduled']:>10} "
                f"{row['event_reduction_event_driven']:>7.2f}x "
                f"{row['wall_batched_speedup']:>8.2f}x "
                f"{row['wall_event_driven_speedup']:>7.2f}x"
            )

    if getattr(args, "profile", None):
        table = profile_scenario(args.profile, mode=args.profile_mode)
        print(table)
        print(f"profile written to {args.profile}")
        return 0

    if args.smoke:
        report = smoke_run()
        print_rows(report)
        write_report(report)
        problems = smoke_check(report)
        for problem in problems:
            print(f"smoke mismatch — {problem}", file=sys.stderr)
        return 1 if problems else 0

    report = engine_benchmark(repeats=args.repeats)
    print_rows(report)
    write_report(report)
    return 0


def cmd_lint(args) -> int:
    """Static analyzer (determinism, layering, hot-path, config drift)."""
    from pathlib import Path

    from repro.devtools import Baseline, lint_package
    from repro.devtools.baseline import BaselineEntry
    from repro.devtools.findings import RULES, family_of

    if args.rules:
        for code in sorted(RULES):
            print(f"{code}  [{family_of(code)}]  {RULES[code]}")
        return 0
    baseline_path = Path(args.baseline)
    baseline = Baseline.load(baseline_path)
    if args.check_baseline:
        # CI guard: every baseline entry must carry a real reason.
        bad = [
            entry
            for entry in baseline.entries
            if not entry.reason.strip()
            or entry.reason.strip().upper().startswith("TODO")
        ]
        for entry in bad:
            print(
                f"{baseline_path}: entry {entry.code} {entry.path} "
                f"(occurrence {entry.occurrence}) has no usable reason: "
                f"{entry.reason!r}",
                file=sys.stderr,
            )
        print(
            f"baseline check: {len(baseline.entries)} entr(ies), "
            f"{len(bad)} without a reason"
        )
        return 1 if bad else 0
    root = (
        Path(args.root)
        if args.root
        else Path(__file__).resolve().parent
    )
    try:
        report = lint_package(
            root,
            baseline=baseline,
            select=args.select or None,
            families=args.only_family or None,
        )
    except ValueError as error:  # unknown --select / --only-family
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.update_baseline:
        # Every new baseline entry must carry a real explanation: an
        # unexplained suppression is just a hidden finding.
        reason = (args.reason or "").strip()
        if not reason or reason.upper().startswith("TODO"):
            print(
                "error: --update-baseline requires --reason with a real "
                "explanation for the newly baselined findings "
                "(not a TODO placeholder)",
                file=sys.stderr,
            )
            return 2
        # Keep the reasons of entries that still match; new findings get
        # the reason given on the command line.
        keep = {entry.key: entry for entry in baseline.entries}
        entries = []
        for finding in report.suppressed + report.findings:
            entry = keep.get(finding.key)
            if entry is None:
                entry = BaselineEntry(
                    path=finding.path,
                    code=finding.code,
                    message=finding.message,
                    occurrence=finding.occurrence,
                    reason=reason,
                )
            entries.append(entry)
        entries.sort(key=lambda entry: entry.key)
        Baseline(entries=entries).save(baseline_path)
        print(
            f"baseline updated: {len(entries)} entr(ies) written to "
            f"{baseline_path}"
        )
        return 0
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_human(stats=args.stats))
    return report.exit_code


def cmd_configs(_args) -> int:
    for name in CONFIG_NAMES:
        print(name)
    return 0


def cmd_profiles(_args) -> int:
    from repro.net.profiles import PROFILES

    for name, net_profile in PROFILES.items():
        print(
            f"{name:<12} {net_profile.downlink_bps / 1e6:6.2f} Mbps down, "
            f"{net_profile.rtt * 1000:5.0f} ms RTT"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vroom (SIGCOMM 2017) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    load = commands.add_parser("load", help="simulate page loads")
    _add_page_args(load)
    load.add_argument(
        "--configs",
        nargs="+",
        default=["http1", "http2", "vroom"],
        choices=CONFIG_NAMES,
    )
    _add_audit_arg(load)
    load.set_defaults(func=cmd_load)

    waterfall = commands.add_parser("waterfall", help="render a waterfall")
    _add_page_args(waterfall)
    waterfall.add_argument("--config", default="vroom", choices=CONFIG_NAMES)
    waterfall.add_argument("--rows", type=int, default=30)
    _add_audit_arg(waterfall)
    waterfall.set_defaults(func=cmd_waterfall)

    audit = commands.add_parser("audit", help="inspect server-side hints")
    _add_page_args(audit)
    audit.add_argument("--rows", type=int, default=5)
    audit.set_defaults(func=cmd_audit)

    report = commands.add_parser(
        "report", help="full comparison report for one page"
    )
    _add_page_args(report)
    report.add_argument(
        "--configs",
        nargs="+",
        default=["http2", "vroom"],
        choices=CONFIG_NAMES,
    )
    _add_audit_arg(report)
    report.set_defaults(func=cmd_report)

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", help="e.g. fig13_headline, adoption_sweep")
    figure.add_argument("--count", type=int, default=None)
    figure.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel sweep workers (0 = one per CPU; default serial)",
    )
    figure.set_defaults(func=cmd_figure)

    sweep = commands.add_parser(
        "sweep", help="corpus-scale sweep on the parallel engine"
    )
    sweep.add_argument(
        "--corpus", choices=sorted(CORPORA), default="news"
    )
    sweep.add_argument("--count", type=int, default=10)
    sweep.add_argument("--device", default="nexus6")
    sweep.add_argument("--user", default="user0")
    sweep.add_argument(
        "--configs",
        nargs="+",
        default=["http2", "vroom"],
        choices=CONFIG_NAMES,
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (0 or omitted = one per CPU)",
    )
    sweep.add_argument(
        "--report",
        default=None,
        help="write the machine-readable perf report (JSON) here",
    )
    sweep.set_defaults(func=cmd_sweep)

    resilience = commands.add_parser(
        "resilience", help="fault-injection resilience sweep"
    )
    resilience.add_argument("--count", type=int, default=6)
    resilience.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.0, 0.05, 0.10, 0.20],
        help="hint-fetch failure probabilities to sweep",
    )
    resilience.add_argument(
        "--configs",
        nargs="+",
        default=["http2", "vroom"],
        choices=CONFIG_NAMES,
    )
    resilience.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-attempt request timeout in seconds (0 disables)",
    )
    resilience.add_argument(
        "--retries", type=int, default=2, help="retries per failed fetch"
    )
    resilience.add_argument(
        "--backoff",
        type=float,
        default=0.25,
        help="first retry delay in seconds (doubles per retry)",
    )
    resilience.add_argument("--seed", type=int, default=0)
    resilience.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (0 or omitted = one per CPU)",
    )
    resilience.add_argument(
        "--report",
        default=None,
        help="write the full sweep result (JSON) here",
    )
    resilience.set_defaults(func=cmd_resilience)

    service = commands.add_parser(
        "service",
        help="simulated hint-serving backend (sharded store + scheduler)",
    )
    service.add_argument(
        "--corpus", choices=sorted(CORPORA), default="news"
    )
    service.add_argument(
        "--pages", type=int, default=50, help="page fleet size"
    )
    service.add_argument("--lookups", type=int, default=100_000)
    service.add_argument(
        "--rate",
        type=float,
        default=20_000.0,
        help="mean arrival rate (lookups per simulated hour)",
    )
    service.add_argument(
        "--zipf", type=float, default=1.1, help="page-popularity exponent"
    )
    service.add_argument("--shards", type=int, default=8)
    service.add_argument(
        "--shard-memory-kb",
        type=int,
        default=256,
        help="per-shard memory budget (KB); LRU eviction enforces it",
    )
    service.add_argument(
        "--ttl", type=float, default=12.0, help="entry TTL (hours)"
    )
    service.add_argument(
        "--fresh",
        type=float,
        default=2.0,
        help="freshness horizon (hours); older entries count as stale hits",
    )
    service.add_argument(
        "--budget",
        type=float,
        default=60.0,
        help="crawl budget (server page loads/hour) for the main run",
    )
    service.add_argument(
        "--budgets",
        type=float,
        nargs="+",
        default=[6.0, 15.0, 60.0],
        help="crawl budgets swept by the staleness experiment",
    )
    service.add_argument(
        "--batch-period",
        type=float,
        default=0.25,
        help="offline-resolution batch period (hours)",
    )
    service.add_argument("--seed", type=int, default=0)
    service.add_argument(
        "--bridge-every",
        type=int,
        default=10_000,
        help="sample every Nth lookup for the accuracy bridge (0 = off)",
    )
    service.add_argument(
        "--report",
        default="BENCH_service.json",
        help="write the machine-readable benchmark (JSON) here",
    )
    service.add_argument(
        "--smoke",
        action="store_true",
        help="run the pinned smoke configuration and assert its counters",
    )
    _add_audit_arg(service)
    service.set_defaults(func=cmd_service)

    longrun = commands.add_parser(
        "longrun",
        help="continuous-operation harness: days-long streaming run "
        "with checkpoint/resume and paired A/B lanes",
    )
    longrun.add_argument(
        "--hours",
        type=float,
        default=48.0,
        help="simulated horizon (hours)",
    )
    longrun.add_argument(
        "--corpus",
        default="news",
        help="scenario corpus (news, alexa100, alexa400, accuracy, "
        "shopping)",
    )
    longrun.add_argument(
        "--pages", type=int, default=None, help="page fleet size"
    )
    longrun.add_argument(
        "--rate",
        type=float,
        default=None,
        help="mean arrival rate (lookups per simulated hour)",
    )
    longrun.add_argument("--shards", type=int, default=None)
    longrun.add_argument(
        "--replication",
        type=int,
        default=None,
        help="replicas per entry in the base lane",
    )
    longrun.add_argument(
        "--digest-bits",
        type=int,
        default=None,
        help="cache-digest bits per entry for repeat-visit hint "
        "filtering (0 = off)",
    )
    longrun.add_argument(
        "--cycle-every",
        type=float,
        default=None,
        help="shard fail/heal cycle period (hours, 0 = no faults)",
    )
    longrun.add_argument(
        "--cycle-down",
        type=float,
        default=None,
        help="outage length per cycle (hours)",
    )
    longrun.add_argument(
        "--rollup",
        type=float,
        default=None,
        help="rollup window length (simulated hours)",
    )
    longrun.add_argument(
        "--checkpoint-at",
        type=float,
        default=None,
        help="checkpoint/resume split point (hours; default mid-run)",
    )
    longrun.add_argument(
        "--report",
        default="BENCH_longrun.json",
        help="write the machine-readable benchmark (JSON) here",
    )
    longrun.add_argument(
        "--smoke",
        action="store_true",
        help="run the pinned smoke scenario and assert its counters",
    )
    _add_audit_arg(longrun)
    longrun.set_defaults(func=cmd_longrun)

    bench = commands.add_parser(
        "bench",
        help="engine micro-benchmarks (the four DES executor modes)",
    )
    bench.add_argument(
        "target",
        choices=["engine"],
        help="benchmark suite to run",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="wall-clock repeats per mode (best-of; counters are exact)",
    )
    bench.add_argument(
        "--report",
        default="BENCH_engine.json",
        help="write the machine-readable benchmark (JSON) here",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "assert the pinned deterministic counters and the batched "
            "speedup floors"
        ),
    )
    bench.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help=(
            "cProfile the corpus-news load under --profile-mode: dump "
            "raw stats to PATH and print the top-25 cumulative table"
        ),
    )
    bench.add_argument(
        "--profile-mode",
        choices=["event_per_tick", "fast_forward", "batched", "event_driven"],
        default="event_driven",
        help=(
            "engine mode to profile with --profile (default: the full "
            "event-driven stack)"
        ),
    )
    _add_audit_arg(bench)
    bench.set_defaults(func=cmd_bench)

    lint = commands.add_parser(
        "lint",
        help="static analyzer: determinism, layering, hot-path perf, "
        "config drift",
    )
    lint.add_argument(
        "--root",
        default=None,
        help="package directory to lint (default: the repro package)",
    )
    lint.add_argument(
        "--baseline",
        default="lint-baseline.json",
        help="baseline file of explained findings",
    )
    lint.add_argument(
        "--format", choices=["human", "json"], default="human"
    )
    lint.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODE",
        help="only run rules matching this code or prefix (repeatable, "
        "e.g. --select PERF401 --select CFG)",
    )
    lint.add_argument(
        "--only-family",
        action="append",
        default=None,
        metavar="FAMILY",
        help="only run one rule family: det, layering, perf, config "
        "(repeatable)",
    )
    lint.add_argument(
        "--stats",
        action="store_true",
        help="append a stats line (files / rules / hot functions / "
        "duration) to human output",
    )
    lint.add_argument(
        "--check-baseline",
        action="store_true",
        help="only validate the baseline file: fail if any entry lacks "
        "a usable reason",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to match the current findings "
        "(requires --reason)",
    )
    lint.add_argument(
        "--reason",
        default=None,
        help="explanation stamped onto newly baselined findings; "
        "required by --update-baseline",
    )
    lint.add_argument(
        "--rules",
        action="store_true",
        help="list the rule codes and exit",
    )
    lint.set_defaults(func=cmd_lint)

    commands.add_parser(
        "configs", help="list named configurations"
    ).set_defaults(func=cmd_configs)
    commands.add_parser(
        "profiles", help="list network profiles"
    ).set_defaults(func=cmd_profiles)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Minimal deterministic discrete-event simulation engine.

Events are ``(time, sequence, callback)`` triples in a binary heap.  The
sequence number breaks time ties in scheduling order, which keeps every run
fully deterministic.  Time is float seconds from an arbitrary origin.

Cancelled events are *compacted* out of the heap lazily: the simulator
counts cancellations and rebuilds the heap once cancelled entries dominate,
so models that churn timer events (e.g. the link's rate-refresh tick) never
drag a long tail of dead events through every ``heappop``.  The live-event
count is maintained incrementally, making :meth:`Simulator.pending` O(1)
instead of an O(n) scan.

For models that tick themselves repeatedly (again, the link's refresh
tick), :meth:`Simulator.advance_inline` lets the *currently executing*
callback move the clock forward without a heap round-trip.  The advance is
refused unless it is unobservable — strictly forward, strictly before the
next pending event, and within the active ``run(until=...)`` cap — so a
model that checks the return value executes the exact same callbacks at
the exact same times as its event-per-tick equivalent.

The deterministic perf counters (``events_scheduled``, ``executed``,
``events_cancelled``, ``inline_advances``, ``compactions``) depend only on
the event trace, never on wall time, so they are stable across machines
and usable as CI regression goldens.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro import audit

#: Compaction threshold: rebuild the heap once at least this many events are
#: cancelled *and* they outnumber the live ones.  Rebuilding is O(n); with
#: this policy its amortised cost per cancellation is O(1).
_COMPACT_MIN_CANCELLED = 64


class Event:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled", "sim")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        #: Owning simulator while the event sits in the heap; detached
        #: (set to None) once popped so late cancels don't skew accounting.
        self.sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event queue with a monotone virtual clock."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        #: ``until`` cap of the active :meth:`run`, honoured by
        #: :meth:`advance_inline`; None outside a capped run.
        self._until: Optional[float] = None
        #: Cancelled events still sitting in the heap.
        self._cancelled = 0
        #: Total events executed (exposed for runaway detection / stats).
        self.executed = 0
        #: Heap rebuilds performed by lazy compaction (exposed for tests).
        self.compactions = 0
        #: Deterministic perf counters: heap events pushed, in-heap events
        #: cancelled, and clock advances taken inline (no heap event).
        self.events_scheduled = 0
        self.events_cancelled = 0
        self.inline_advances = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        event = Event(self._now + delay, next(self._seq), callback)
        event.sim = self
        heapq.heappush(self._queue, event)
        self.events_scheduled += 1
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated time ``time``."""
        return self.schedule(max(0.0, time - self._now), callback)

    def call_soon(self, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at the current time, after pending same-time events."""
        return self.schedule(0.0, callback)

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        self.events_cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and restore the heap invariant.

        Safe at any point: event ordering is total (time, seq), so
        ``heapify`` over the surviving events reproduces exactly the order
        a pop-by-pop drain would have seen.
        """
        for event in self._queue:
            if event.cancelled:
                event.sim = None
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self.compactions += 1

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 5_000_000,
    ) -> float:
        """Drain the queue; returns the final clock value.

        ``until`` caps virtual time; ``max_events`` guards against runaway
        feedback loops in buggy models (raises ``RuntimeError``).
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        self._until = until
        heappop = heapq.heappop
        heappush = heapq.heappush
        try:
            # Callbacks may cancel events and trigger a compaction that
            # replaces ``self._queue``, so re-read the attribute each loop.
            while self._queue:
                event = heappop(self._queue)
                if event.cancelled:
                    event.sim = None
                    self._cancelled -= 1
                    continue
                if until is not None and event.time > until:
                    heappush(self._queue, event)
                    self._now = until
                    break
                event.sim = None
                if event.time < self._now - 1e-12:
                    raise RuntimeError("event scheduled in the past")
                if event.time > self._now:
                    self._now = event.time
                self.executed += 1
                if self.executed > max_events:
                    raise RuntimeError(
                        f"exceeded {max_events} events; likely a model loop"
                    )
                if audit.ENABLED:
                    before = self._now
                    event.callback()
                    audit.clock_monotonic(
                        before, self._now, f"event #{event.seq}"
                    )
                else:
                    event.callback()
        finally:
            self._running = False
            self._until = None
        return self._now

    def advance_inline(self, target: float) -> bool:
        """Move the clock to ``target`` from inside a running callback.

        Returns True and advances only when the jump is *unobservable*:
        strictly forward, strictly before the next pending event, and not
        past the active ``run(until=...)`` cap.  Otherwise returns False
        and leaves the clock untouched, so the caller falls back to
        scheduling a regular heap event — which keeps the executed event
        trace bit-identical to the event-per-tick engine.
        """
        if target <= self._now:
            return False
        if self._until is not None and target > self._until:
            return False
        next_time = self.peek_time()
        if next_time is not None and next_time <= target:
            return False
        if audit.ENABLED:
            audit.fast_forward_bounds(self._now, target, next_time)
        self._now = target
        self.inline_advances += 1
        return True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, if any."""
        queue = self._queue
        while queue and queue[0].cancelled:
            dead = heapq.heappop(queue)
            dead.sim = None
            self._cancelled -= 1
        return queue[0].time if queue else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events, in O(1)."""
        return len(self._queue) - self._cancelled

"""Property-based tests for the extension components."""

from hypothesis import given, settings, strategies as st

from repro.browser.cpu import BAND_DEFER, BAND_EXEC, BAND_PARSER, CpuQueue
from repro.core.cache_digest import CacheDigest, filter_pushes
from repro.net.simulator import Simulator
from repro.pages.serialization import (
    blueprint_from_dict,
    blueprint_to_dict,
)

# ---------------------------------------------------------------------------
# CacheDigest: one-sided error under any input
# ---------------------------------------------------------------------------

_urls = st.lists(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
        min_size=1,
        max_size=30,
    ).map(lambda path: f"dom.com/{path}"),
    max_size=100,
)


@given(_urls, st.integers(min_value=2, max_value=16))
def test_digest_never_false_negative(urls, bits):
    digest = CacheDigest(urls, bits_per_entry=bits)
    assert all(url in digest for url in urls)


@given(_urls)
def test_filter_pushes_is_subset_preserving_order(urls):
    digest = CacheDigest(urls[: len(urls) // 2])
    filtered = filter_pushes(urls, digest)
    assert [url for url in urls if url in filtered] == filtered
    # Everything filtered out was claimed cached.
    for url in set(urls) - set(filtered):
        assert url in digest


# ---------------------------------------------------------------------------
# CpuQueue: conservation and band ordering
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=1.0),
            st.sampled_from([BAND_PARSER, BAND_EXEC, BAND_DEFER]),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_cpu_queue_conserves_work(tasks):
    sim = Simulator()
    cpu = CpuQueue(sim)
    done = []
    for duration, band in tasks:
        cpu.submit(duration, lambda d=duration: done.append(d), band=band)
    finish = sim.run()
    total = sum(duration for duration, _ in tasks)
    assert len(done) == len(tasks)
    assert abs(cpu.busy_time - total) < 1e-9
    assert abs(finish - total) < 1e-9  # serial, work-conserving


@given(
    st.lists(
        st.floats(min_value=0.01, max_value=0.5), min_size=2, max_size=10
    )
)
@settings(max_examples=30, deadline=None)
def test_cpu_queue_defer_band_runs_last_when_queued_together(durations):
    sim = Simulator()
    cpu = CpuQueue(sim)
    order = []
    for index, duration in enumerate(durations):
        band = BAND_DEFER if index % 2 else BAND_PARSER
        cpu.submit(
            duration,
            lambda i=index: order.append(i),
            band=band,
        )
    sim.run()
    # Among tasks queued before anything ran, parser-band tasks (the
    # first submission runs immediately regardless) precede defer-band.
    parser_positions = [
        order.index(i) for i in range(1, len(durations)) if i % 2 == 0
    ]
    defer_positions = [
        order.index(i) for i in range(1, len(durations)) if i % 2 == 1
    ]
    if parser_positions and defer_positions:
        assert max(parser_positions) < min(defer_positions) or (
            len(durations) <= 2
        )


# ---------------------------------------------------------------------------
# Serialization: generated pages always round-trip
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=5000))
@settings(max_examples=15, deadline=None)
def test_blueprints_round_trip(seed):
    from repro.calibration import ALEXA_TOP100_PROFILE
    from repro.pages.generator import generate_page

    page = generate_page(ALEXA_TOP100_PROFILE, "ser", seed=seed)
    restored = blueprint_from_dict(blueprint_to_dict(page))
    assert set(restored.specs) == set(page.specs)
    for name, spec in page.specs.items():
        assert restored.specs[name] == spec

"""Recording: capture one materialised load of a page into a ReplayStore.

The paper records each page through Mahimahi by proxying a real phone load;
we record by walking the snapshot's resource tree (the snapshot *is* what a
load would fetch) and assigning each domain a stable pseudo-random RTT, as
Mahimahi preserves the median RTT it observed per server.
"""

from __future__ import annotations

import hashlib

from repro.calibration import SERVER_RTT_RANGE
from repro.pages.page import PageSnapshot
from repro.replay.store import RecordedResponse, ReplayStore


def domain_rtt(domain: str) -> float:
    """Deterministic per-domain server RTT within the calibrated range."""
    low, high = SERVER_RTT_RANGE
    digest = hashlib.sha1(domain.encode()).digest()
    fraction = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
    return low + fraction * (high - low)


def record_snapshot(snapshot: PageSnapshot) -> ReplayStore:
    """Capture every exchange a load of ``snapshot`` performs."""
    store = ReplayStore(page=snapshot.page)
    for resource in snapshot.all_resources():
        store.add(
            RecordedResponse(
                url=resource.url,
                domain=resource.domain,
                size=resource.size,
                is_html=resource.is_document,
                body=resource.body,
                resource=resource,
            ),
            rtt=domain_rtt(resource.domain),
        )
    return store

"""Tests for the shopping corpus (high-churn pages, Sec 4.1's example)."""

import statistics

from repro.analysis.persistence import persistence_fraction
from repro.core.resolver import ResolutionStrategy
from repro.analysis.accuracy import score_strategy
from repro.pages.corpus import alexa_top100_corpus, shopping_corpus


class TestShoppingCorpus:
    def test_builds_and_validates(self):
        pages = shopping_corpus(count=4)
        assert len(pages) == 4
        for page in pages:
            page.validate()

    def test_churns_faster_than_alexa(self, stamp):
        shop = statistics.median(
            persistence_fraction(page, stamp, 24.0)
            for page in shopping_corpus(count=6)
        )
        alexa = statistics.median(
            persistence_fraction(page, stamp, 24.0)
            for page in alexa_top100_corpus(count=6)
        )
        assert shop < alexa

    def test_offline_only_suffers_most_here(self, stamp):
        """The paper's motivating case for online analysis: product
        rotations make hour-old offline data stale."""
        pages = shopping_corpus(count=5)
        offline_fn = statistics.median(
            score_strategy(
                page, stamp, ResolutionStrategy.OFFLINE_ONLY
            ).fn_rate
            for page in pages
        )
        vroom_fn = statistics.median(
            score_strategy(page, stamp, ResolutionStrategy.VROOM).fn_rate
            for page in pages
        )
        assert offline_fn > vroom_fn
        assert offline_fn > 0.10  # hour-scale rotations really bite

    def test_vroom_still_wins_on_shopping_pages(self, stamp):
        from repro.baselines.configs import run_config
        from repro.replay.recorder import record_snapshot

        gains = []
        for page in shopping_corpus(count=3):
            snapshot = page.materialize(stamp)
            store = record_snapshot(snapshot)
            http2 = run_config("http2", page, snapshot, store).plt
            vroom = run_config("vroom", page, snapshot, store).plt
            gains.append(http2 - vroom)
        assert statistics.median(gains) > 0

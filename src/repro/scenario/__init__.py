"""Declarative run descriptions for the continuous-operation harness.

A :class:`~repro.scenario.spec.ScenarioSpec` composes everything a
long-horizon service run depends on — corpus selection, network
profile, workload shape, fault plan, store policy — into one
fingerprintable, JSON-round-trippable value.  The streaming runner
(:mod:`repro.longrun`) consumes specs; nothing in this layer runs a
simulation itself.
"""

from repro.scenario.spec import (
    CORPUS_BUILDERS,
    ScenarioSpec,
    fault_rule_from_dict,
    fault_rule_to_dict,
)

__all__ = [
    "CORPUS_BUILDERS",
    "ScenarioSpec",
    "fault_rule_from_dict",
    "fault_rule_to_dict",
]

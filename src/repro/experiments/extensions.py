"""Extension experiments beyond the paper's figures.

These probe the directions the paper explicitly flags but does not
evaluate: incremental adoption beyond first-party-only, the Vroom+Polaris
hybrid, alternate network regimes (Sec 4.3's caveat), cache-digest push
suppression, and page-type clustering economics (Sec 7).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.baselines.configs import run_config
from repro.browser.engine import BrowserConfig, load_page
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.core.clustering import evaluate_clustering
from repro.core.scheduler import VroomScheduler
from repro.core.server import vroom_servers
from repro.net.link import StreamScheduling
from repro.net.profiles import PROFILES
from repro.pages.corpus import accuracy_corpus, news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.recorder import record_snapshot


def _stamp() -> LoadStamp:
    return LoadStamp(when_hours=DEFAULT_EVAL_HOUR)


def adoption_sweep(
    count: int = 12,
    fractions: tuple = (0.0, 0.25, 0.5, 0.75, 1.0),
    seed: int = 7,
) -> Dict[str, List[float]]:
    """Median PLT as a growing fraction of domains adopts Vroom.

    Fraction 0 is the HTTP/2 baseline; the first party always adopts
    first (it controls the root HTML, which carries most of the hint
    value); third parties join in seeded random order.
    """
    stamp = _stamp()
    rng = random.Random(seed)
    out: Dict[str, List[float]] = {
        f"adopt_{int(fraction * 100):03d}": [] for fraction in fractions
    }
    for page in news_sports_corpus(count):
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        domains = snapshot.domains()
        first_party = f"{page.name}.com"
        third_parties = [d for d in domains if d != first_party]
        rng.shuffle(third_parties)
        for fraction in fractions:
            label = f"adopt_{int(fraction * 100):03d}"
            if fraction == 0.0:
                metrics = run_config("http2", page, snapshot, store)
            else:
                extra = int(round((len(third_parties)) * (fraction)))
                adopting = {first_party} | set(third_parties[:extra])
                servers = vroom_servers(
                    page, snapshot, store, adopting_domains=adopting
                )
                metrics = load_page(
                    snapshot,
                    servers,
                    _fifo_config(),
                    BrowserConfig(when_hours=stamp.when_hours),
                    policy=VroomScheduler(),
                )
            out[label].append(metrics.plt)
    return out


def _fifo_config():
    from repro.net.http import NetworkConfig

    return NetworkConfig(h2_scheduling=StreamScheduling.FIFO)


def hybrid_comparison(count: int = 16) -> Dict[str, List[float]]:
    """Vroom vs Polaris vs the hybrid, PLT per page."""
    stamp = _stamp()
    out: Dict[str, List[float]] = {
        "vroom": [], "polaris": [], "hybrid": [],
    }
    for page in news_sports_corpus(count):
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        for config in out:
            out[config].append(
                run_config(config, page, snapshot, store).plt
            )
    return out


def network_regimes(count: int = 10) -> Dict[str, Dict[str, List[float]]]:
    """Vroom vs HTTP/2 across network profiles (Sec 4.3's caveat).

    On the bandwidth-starved profiles Vroom's prefetching competes with
    the critical path for scarce bytes; on the latency-starved ones the
    hint round trips matter more.  The gain should shrink (possibly
    invert) away from the LTE design point.
    """
    stamp = _stamp()
    out: Dict[str, Dict[str, List[float]]] = {}
    for name, net_profile in PROFILES.items():
        rows: Dict[str, List[float]] = {"http2": [], "vroom": []}
        for page in news_sports_corpus(count):
            snapshot = page.materialize(stamp)
            store = record_snapshot(snapshot)
            from repro.replay.replayer import build_servers

            baseline = load_page(
                snapshot,
                build_servers(store),
                net_profile.config(),
                BrowserConfig(when_hours=stamp.when_hours),
            )
            rows["http2"].append(baseline.plt)
            servers = vroom_servers(page, snapshot, store)
            vroom = load_page(
                snapshot,
                servers,
                net_profile.config(
                    h2_scheduling=StreamScheduling.FIFO
                ),
                BrowserConfig(when_hours=stamp.when_hours),
                policy=VroomScheduler(),
            )
            rows["vroom"].append(vroom.plt)
        out[name] = rows
    return out


def clustering_economics(
    count: int = 30, similarity_threshold: float = 0.5
) -> Dict[str, float]:
    """Sec 7: offline-load savings from page-type clustering."""
    pages = accuracy_corpus(count)
    economics = evaluate_clustering(
        pages, _stamp().when_hours, similarity_threshold
    )
    return {
        "pages": float(economics.pages),
        "clusters": float(economics.clusters),
        "hourly_load_reduction": economics.load_reduction,
        "median_stable_coverage": economics.median_coverage,
    }

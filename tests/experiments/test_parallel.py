"""Determinism and plumbing tests for the parallel sweep engine."""

import pytest

from repro.calibration import DEFAULT_EVAL_HOUR
from repro.experiments.harness import ExperimentRun, sweep_configs
from repro.experiments.parallel import (
    SweepPerf,
    resolve_workers,
    run_sweep,
    sweep_jobs,
)
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.cache import SnapshotCache

CONFIGS = ["http2", "vroom", "push-all-fetch-asap"]


@pytest.fixture(scope="module")
def pages():
    return news_sports_corpus(count=3)


@pytest.fixture(scope="module")
def serial_run(pages):
    run, _ = run_sweep(
        pages, CONFIGS, workers=1, cache=SnapshotCache()
    )
    return run


class TestJobDecomposition:
    def test_indices_follow_serial_nesting(self):
        jobs = sweep_jobs(2, ["a", "b"])
        assert [(j.index, j.page_index, j.config) for j in jobs] == [
            (0, 0, "a"), (1, 0, "b"), (2, 1, "a"), (3, 1, "b"),
        ]

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1

    def test_resolve_workers_auto_sizes_to_cpus(self):
        import os

        assert resolve_workers(None) == (os.cpu_count() or 1)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_resolve_workers_clamped_by_jobs(self):
        assert resolve_workers(8, jobs=3) == 3
        assert resolve_workers(2, jobs=3) == 2
        assert resolve_workers(None, jobs=1) == 1
        # Degenerate job counts still yield a usable worker count.
        assert resolve_workers(8, jobs=0) == 1

    def test_sweep_records_effective_workers(self, pages):
        _, perf = run_sweep(
            pages, ["http2"], workers=64, cache=SnapshotCache()
        )
        # 3 pages x 1 config = 3 jobs: the pool never exceeds the jobs.
        assert perf.workers == 3


class TestDeterminism:
    """Parallel output must be bit-identical to the serial path."""

    def test_one_worker_matches_serial(self, pages, serial_run):
        run, perf = run_sweep(
            pages, CONFIGS, workers=1, cache=SnapshotCache()
        )
        assert run.values == serial_run.values
        assert perf.jobs == len(pages) * len(CONFIGS)

    def test_n_workers_match_serial(self, pages, serial_run):
        run, perf = run_sweep(
            pages, CONFIGS, workers=3, cache=SnapshotCache()
        )
        assert run.values == serial_run.values
        assert perf.workers == 3

    def test_sweep_configs_wrapper_matches(self, pages, serial_run):
        run = sweep_configs(
            pages, CONFIGS, workers=2, cache=SnapshotCache()
        )
        assert run.values == serial_run.values

    def test_hooks_fire_in_serial_order(self, pages):
        order = []
        run_sweep(
            pages,
            ["http2", "vroom"],
            workers=2,
            cache=SnapshotCache(),
            per_page_hook=lambda page, config, metrics: order.append(
                (page.name, config)
            ),
        )
        expected = [
            (page.name, config)
            for page in pages
            for config in ("http2", "vroom")
        ]
        assert order == expected

    def test_custom_metric_applies_in_parent(self, pages):
        run, _ = run_sweep(
            pages,
            ["http2"],
            metric=lambda metrics: metrics.aft,
            metric_name="aft",
            workers=2,
            cache=SnapshotCache(),
        )
        assert run.metric == "aft"
        assert all(value > 0 for value in run.series("http2"))


class TestWorkerStateHygiene:
    """The inline (workers=1) path borrows the worker globals of this
    process; it must release them or every snapshot tree stays pinned."""

    def test_inline_run_releases_work_table(self, pages):
        from repro.experiments import parallel

        run_sweep(pages, ["http2"], workers=1, cache=SnapshotCache())
        assert parallel._WORKER_WORK == []
        assert parallel._WORKER_KWARGS == {}

    def test_inline_run_releases_on_error(self, pages):
        from repro.experiments import parallel

        with pytest.raises(ValueError, match="unknown configuration"):
            run_sweep(
                pages, ["no-such-config"], workers=1,
                cache=SnapshotCache(),
            )
        assert parallel._WORKER_WORK == []
        assert parallel._WORKER_KWARGS == {}


class TestSweepPerf:
    def test_cache_counters_isolated_per_sweep(self, pages):
        cache = SnapshotCache()
        _, cold = run_sweep(pages, ["http2"], workers=1, cache=cache)
        _, warm = run_sweep(pages, ["vroom"], workers=1, cache=cache)
        assert cold.cache_misses == len(pages) and cold.cache_hits == 0
        assert warm.cache_hits == len(pages) and warm.cache_misses == 0
        assert warm.cache_hit_rate == 1.0

    def test_perf_report_shape(self):
        perf = SweepPerf(
            jobs=10, workers=2, elapsed=2.0, cache_hits=3, cache_misses=7
        )
        report = perf.as_dict()
        assert report["jobs_per_sec"] == 5.0
        assert report["cache_hit_rate"] == 0.3
        assert report["mode"] == "inline"
        assert set(report) == {
            "jobs", "workers", "mode", "elapsed_sec", "jobs_per_sec",
            "cache_hits", "cache_misses", "cache_hit_rate",
        }

    def test_grid_mode_dispatch(self):
        from repro.experiments.parallel import grid_mode

        assert grid_mode(workers=1, jobs=30) == "inline"
        assert grid_mode(workers=4, jobs=1) == "inline"
        assert grid_mode(workers=4, jobs=30) == "pool"

    def test_sweep_records_inline_mode_for_single_worker(self, pages):
        _, perf = run_sweep(
            pages, ["http2"], workers=1, cache=SnapshotCache()
        )
        assert perf.workers == 1
        assert perf.mode == "inline"


class TestExperimentRunShards:
    def test_merge_reassembles_sharded_sweep(self, pages, serial_run):
        stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
        shards = [
            run_sweep(
                [page], CONFIGS, stamp=stamp, workers=1,
                cache=SnapshotCache(),
            )[0]
            for page in pages
        ]
        merged = ExperimentRun.merge(shards)
        assert merged.values == serial_run.values

    def test_merge_rejects_mixed_metrics(self):
        with pytest.raises(ValueError, match="different metrics"):
            ExperimentRun.merge(
                [ExperimentRun(metric="plt"), ExperimentRun(metric="aft")]
            )

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError, match="zero"):
            ExperimentRun.merge([])

    def test_series_error_names_known_configs(self):
        run = ExperimentRun(metric="plt")
        run.add("http2", 1.0)
        run.add("vroom", 2.0)
        with pytest.raises(KeyError, match="http2, vroom"):
            run.series("polaris")

"""Tests for the two-stage scheduler ablation."""

from repro.baselines.configs import run_config
from repro.browser.engine import BrowserConfig, PageLoadEngine
from repro.core.scheduler import TwoStageScheduler
from repro.core.server import vroom_servers
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling
from repro.pages.resources import Priority


def two_stage_engine(page, snapshot, store):
    return PageLoadEngine(
        snapshot,
        vroom_servers(page, snapshot, store),
        NetworkConfig(h2_scheduling=StreamScheduling.FIFO),
        BrowserConfig(when_hours=snapshot.stamp.when_hours),
        TwoStageScheduler(),
    )


class TestTwoStage:
    def test_load_completes(self, page, snapshot, store):
        metrics = two_stage_engine(page, snapshot, store).run()
        assert metrics.plt > 0

    def test_no_semi_important_bucket_used(self, page, snapshot, store):
        engine = two_stage_engine(page, snapshot, store)
        policy = engine.policy
        engine.run()
        assert policy._hinted[Priority.SEMI_IMPORTANT] == []

    def test_runs_via_config_registry(self, page, snapshot, store):
        metrics = run_config("vroom-two-stage", page, snapshot, store)
        assert metrics.plt > 0

    def test_close_to_three_stage(self, page, snapshot, store):
        """The middle class is a refinement, not a cliff: collapsing it
        should change PLT only modestly on a typical page."""
        three = run_config("vroom", page, snapshot, store).plt
        two = run_config("vroom-two-stage", page, snapshot, store).plt
        assert abs(two - three) < three * 0.25

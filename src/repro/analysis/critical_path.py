"""Critical-path composition: what actually sits on the slow chain.

WProf-style breakdown of the reconstructed critical path: how much of it
is network vs CPU, and which resource types occupy it.  The paper's Fig 4
uses the network share; the per-type composition explains *why* (chains
of third-party scripts, not images, dominate the wait).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.browser.metrics import LoadMetrics


@dataclass
class CriticalPathComposition:
    """Seconds of critical path attributed per (kind, resource type)."""

    total: float
    network_seconds: float
    cpu_seconds: float
    by_resource_type: Dict[str, float]
    by_domain_party: Dict[str, float]  # "first-party" / "third-party"

    @property
    def network_fraction(self) -> float:
        return self.network_seconds / self.total if self.total else 0.0

    def describe(self) -> str:
        lines = [
            f"critical path {self.total:.2f}s: "
            f"network {self.network_seconds:.2f}s "
            f"({self.network_fraction:.0%}), cpu {self.cpu_seconds:.2f}s"
        ]
        for rtype, seconds in sorted(
            self.by_resource_type.items(), key=lambda item: -item[1]
        ):
            lines.append(f"  {rtype:<8} {seconds:5.2f}s")
        for party, seconds in sorted(self.by_domain_party.items()):
            lines.append(f"  {party:<12} {seconds:5.2f}s")
        return "\n".join(lines)


def critical_path_composition(
    metrics: LoadMetrics, first_party_domain: str = ""
) -> CriticalPathComposition:
    """Break the reconstructed critical path down by kind and type."""
    network = cpu = 0.0
    by_type: Dict[str, float] = {}
    by_party: Dict[str, float] = {}
    for hop in metrics.critical_path:
        duration = hop.duration
        if hop.kind == "network":
            network += duration
        else:
            cpu += duration
        timeline = metrics.timelines.get(hop.url)
        rtype = (
            timeline.resource.rtype.value
            if timeline is not None and timeline.resource is not None
            else "unknown"
        )
        by_type[rtype] = by_type.get(rtype, 0.0) + duration
        domain = hop.url.partition("/")[0]
        party = (
            "first-party"
            if first_party_domain and domain == first_party_domain
            else "third-party"
        )
        by_party[party] = by_party.get(party, 0.0) + duration
    return CriticalPathComposition(
        total=network + cpu,
        network_seconds=network,
        cpu_seconds=cpu,
        by_resource_type=by_type,
        by_domain_party=by_party,
    )

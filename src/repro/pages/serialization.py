"""Blueprint serialization: page descriptions as portable JSON.

A :class:`~repro.pages.page.PageBlueprint` is pure data; serialising it
lets users pin corpora to disk, share page descriptions across machines,
or hand-author pages without touching the generator.  The format is a
versioned JSON document; loading validates structure via
``PageBlueprint.validate``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.pages.page import PageBlueprint
from repro.pages.resources import Discovery, ResourceSpec, ResourceType

FORMAT_VERSION = 1

_SPEC_FIELDS = (
    "name",
    "domain",
    "size",
    "parent",
    "position",
    "exec_async",
    "above_fold",
    "pixel_weight",
    "cacheable",
    "max_age_hours",
    "lifetime_hours",
    "unpredictable",
    "device_dependent",
    "personalized",
    "user_state_script",
    "server_think_time",
)


def spec_to_dict(spec: ResourceSpec) -> Dict[str, Any]:
    data = {field: getattr(spec, field) for field in _SPEC_FIELDS}
    data["rtype"] = spec.rtype.value
    data["discovery"] = spec.discovery.value
    return data


def spec_from_dict(data: Dict[str, Any]) -> ResourceSpec:
    payload = dict(data)
    try:
        rtype = ResourceType(payload.pop("rtype"))
        discovery = Discovery(payload.pop("discovery"))
    except (KeyError, ValueError) as exc:
        raise ValueError(f"malformed resource spec: {exc}") from exc
    unknown = set(payload) - set(_SPEC_FIELDS)
    if unknown:
        raise ValueError(f"unknown spec fields: {sorted(unknown)}")
    return ResourceSpec(rtype=rtype, discovery=discovery, **payload)


def blueprint_to_dict(page: PageBlueprint) -> Dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "name": page.name,
        "root": page.root,
        "specs": [spec_to_dict(spec) for spec in page.specs.values()],
    }


def blueprint_from_dict(data: Dict[str, Any]) -> PageBlueprint:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported blueprint format version {version!r}"
        )
    page = PageBlueprint(name=data["name"], root=data["root"])
    # Parents must exist before children; insert roots first, then
    # repeatedly add specs whose parent is already present.
    pending: List[Dict[str, Any]] = list(data["specs"])
    while pending:
        progressed = False
        remaining = []
        for spec_data in pending:
            parent = spec_data.get("parent")
            if parent is None or parent in page.specs:
                page.add(spec_from_dict(spec_data))
                progressed = True
            else:
                remaining.append(spec_data)
        if not progressed:
            orphans = sorted(item["name"] for item in remaining)
            raise ValueError(f"specs with unresolvable parents: {orphans}")
        pending = remaining
    page.validate()
    return page


def dump_blueprint(page: PageBlueprint, path: str) -> None:
    """Write a blueprint to a JSON file."""
    with open(path, "w") as handle:
        json.dump(blueprint_to_dict(page), handle, indent=1, sort_keys=True)


def load_blueprint(path: str) -> PageBlueprint:
    """Read a blueprint from a JSON file (validates on load)."""
    with open(path) as handle:
        return blueprint_from_dict(json.load(handle))


def dump_corpus(pages: List[PageBlueprint], path: str) -> None:
    """Write a whole corpus to one JSON file."""
    with open(path, "w") as handle:
        json.dump(
            {
                "format_version": FORMAT_VERSION,
                "pages": [blueprint_to_dict(page) for page in pages],
            },
            handle,
            sort_keys=True,
        )


def load_corpus(path: str) -> List[PageBlueprint]:
    with open(path) as handle:
        data = json.load(handle)
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError("unsupported corpus format version")
    return [blueprint_from_dict(item) for item in data["pages"]]

"""The full Sec 6.2 accuracy methodology: multiple users, hourly loads.

The paper evaluates server-side dependency resolution on 265 pages loaded
"once every hour for a week from the perspective of four users, whose
cookies are seeded by visiting the landing pages of the top 50 pages in
the Business, Health, Computers, and Shopping/Vehicles Alexa categories".
This module reproduces that protocol: per-user, per-hour FP/FN scoring,
aggregated the way Fig 21 aggregates (distribution across page loads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.accuracy import score_strategy
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.core.resolver import ResolutionStrategy
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint

#: The four user personas of Sec 6.2, named for their seeded categories.
USERS = ("business", "health", "computers", "shopping")


@dataclass
class AccuracySweep:
    """FP/FN distributions across (page, user, hour) loads."""

    strategy: ResolutionStrategy
    fn_rates: List[float]
    fp_rates: List[float]

    def __len__(self) -> int:
        return len(self.fn_rates)


def sweep_accuracy(
    pages: Sequence[PageBlueprint],
    strategy: ResolutionStrategy,
    *,
    users: Sequence[str] = USERS,
    hours: Sequence[float] = (0.0,),
    base_hour: float = DEFAULT_EVAL_HOUR,
    device: str = "nexus6",
) -> AccuracySweep:
    """Score ``strategy`` across pages x users x hours."""
    fn_rates: List[float] = []
    fp_rates: List[float] = []
    for page in pages:
        for user in users:
            for offset in hours:
                stamp = LoadStamp(
                    when_hours=base_hour + offset,
                    device=device,
                    user=user,
                    nonce=int(offset * 7919),
                )
                result = score_strategy(page, stamp, strategy)
                fn_rates.append(result.fn_rate)
                fp_rates.append(result.fp_rate)
    return AccuracySweep(
        strategy=strategy, fn_rates=fn_rates, fp_rates=fp_rates
    )


def multi_user_accuracy(
    count: int = 20,
    hours: Sequence[float] = (0.0, 5.0, 23.0),
) -> Dict[str, List[float]]:
    """Fig 21's metrics under the full multi-user, multi-hour protocol."""
    from repro.pages.corpus import accuracy_corpus

    pages = accuracy_corpus(count)
    out: Dict[str, List[float]] = {}
    for strategy in (
        ResolutionStrategy.VROOM,
        ResolutionStrategy.OFFLINE_ONLY,
        ResolutionStrategy.ONLINE_ONLY,
    ):
        sweep = sweep_accuracy(pages, strategy, hours=hours)
        out[f"{strategy.value}_fn"] = sweep.fn_rates
        out[f"{strategy.value}_fp"] = sweep.fp_rates
    return out


def accuracy_over_time(
    count: int = 10,
    horizon_hours: float = 48.0,
    step_hours: float = 8.0,
) -> Dict[str, List[float]]:
    """Does Vroom's accuracy hold up across the day/night content cycle?

    Returns the median FN rate per sampled hour — flat is good; spikes
    would indicate the offline window failing at rotation boundaries.
    """
    from statistics import median

    from repro.pages.corpus import accuracy_corpus

    pages = accuracy_corpus(count)
    hours: List[float] = []
    medians: List[float] = []
    offset = 0.0
    while offset <= horizon_hours:
        sweep = sweep_accuracy(
            pages,
            ResolutionStrategy.VROOM,
            users=("business",),
            hours=(offset,),
        )
        hours.append(offset)
        medians.append(median(sweep.fn_rates))
        offset += step_hours
    return {"hour": hours, "vroom_fn_median": medians}

"""Unit tests for the CPU cost model and serial task queue."""

import pytest

from repro.browser.cpu import CpuQueue, DEVICE_PROFILES
from repro.net.simulator import Simulator
from repro.pages.resources import ResourceType


class TestCpuProfile:
    def test_costs_scale_with_bytes(self):
        profile = DEVICE_PROFILES["nexus6"]
        assert profile.js_exec_time(200_000) > profile.js_exec_time(100_000)
        assert profile.html_parse_time(50_000) > 0

    def test_faster_device_is_faster(self):
        nexus6 = DEVICE_PROFILES["nexus6"]
        oneplus3 = DEVICE_PROFILES["oneplus3"]
        assert oneplus3.js_exec_time(100_000) < nexus6.js_exec_time(100_000)

    def test_tablet_is_slower(self):
        nexus6 = DEVICE_PROFILES["nexus6"]
        nexus10 = DEVICE_PROFILES["nexus10"]
        assert nexus10.js_exec_time(100_000) > nexus6.js_exec_time(100_000)

    def test_decode_cheaper_than_exec(self):
        profile = DEVICE_PROFILES["nexus6"]
        assert profile.decode_time(100_000) < profile.js_exec_time(100_000)

    def test_process_time_dispatch(self):
        profile = DEVICE_PROFILES["nexus6"]
        assert profile.process_time(
            ResourceType.HTML, 10_000
        ) == profile.html_parse_time(10_000)
        assert profile.process_time(
            ResourceType.JS, 10_000
        ) == profile.js_exec_time(10_000)
        assert profile.process_time(
            ResourceType.CSS, 10_000
        ) == profile.css_parse_time(10_000)
        assert profile.process_time(
            ResourceType.IMAGE, 10_000
        ) == profile.decode_time(10_000)


class TestCpuQueue:
    def test_serial_execution(self):
        sim = Simulator()
        cpu = CpuQueue(sim)
        done = []
        cpu.submit(1.0, lambda: done.append(sim.now))
        cpu.submit(2.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 3.0]

    def test_high_band_preempts_queued_low(self):
        sim = Simulator()
        cpu = CpuQueue(sim)
        order = []
        cpu.submit(1.0, lambda: order.append("first"))
        cpu.submit(1.0, lambda: order.append("low"), low_priority=True)
        cpu.submit(1.0, lambda: order.append("high"))
        sim.run()
        assert order == ["first", "high", "low"]

    def test_negative_duration_rejected(self):
        cpu = CpuQueue(Simulator())
        with pytest.raises(ValueError):
            cpu.submit(-1.0, lambda: None)

    def test_busy_time_accounting(self):
        sim = Simulator()
        cpu = CpuQueue(sim)
        cpu.submit(1.5, lambda: None)
        cpu.submit(0.5, lambda: None, low_priority=True)
        sim.run()
        assert cpu.busy_time == pytest.approx(2.0)

    def test_when_idle_waits_for_drain(self):
        sim = Simulator()
        cpu = CpuQueue(sim)
        seen = []
        cpu.submit(1.0, lambda: None)
        cpu.submit(1.0, lambda: None)
        cpu.when_idle(lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]

    def test_when_idle_immediate_if_empty(self):
        sim = Simulator()
        cpu = CpuQueue(sim)
        seen = []
        cpu.when_idle(lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.0]

    def test_between_tasks_fires_at_boundary(self):
        """The event loop yields between tasks, not at queue drain."""
        sim = Simulator()
        cpu = CpuQueue(sim)
        seen = []
        cpu.submit(1.0, lambda: None)
        cpu.submit(5.0, lambda: None)
        cpu.between_tasks(lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.0]

    def test_tasks_submitted_during_task_run_after(self):
        sim = Simulator()
        cpu = CpuQueue(sim)
        order = []

        def first():
            order.append(("first", sim.now))
            cpu.submit(1.0, lambda: order.append(("nested", sim.now)))

        cpu.submit(2.0, first)
        sim.run()
        assert order == [("first", 2.0), ("nested", 3.0)]

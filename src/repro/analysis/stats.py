"""Small statistics helpers used across experiments (CDFs, percentiles)."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile; ``fraction`` in [0, 1]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    if ordered[low] == ordered[high]:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def median(values: Sequence[float]) -> float:
    return percentile(values, 0.5)


def quartiles(values: Sequence[float]) -> Tuple[float, float, float]:
    """(25th, 50th, 75th) percentiles — the paper's box plots."""
    return (
        percentile(values, 0.25),
        percentile(values, 0.50),
        percentile(values, 0.75),
    )


class Cdf:
    """An empirical CDF over a set of per-page values."""

    def __init__(self, values: Iterable[float]):
        self.values: List[float] = sorted(values)
        if not self.values:
            raise ValueError("empty CDF")

    def __len__(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """Fraction of values <= x."""
        count = 0
        for value in self.values:
            if value <= x:
                count += 1
            else:
                break
        return count / len(self.values)

    def quantile(self, fraction: float) -> float:
        return percentile(self.values, fraction)

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def points(self, steps: int = 20) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting/printing."""
        out = []
        for index, value in enumerate(self.values):
            out.append((value, (index + 1) / len(self.values)))
        if steps and len(out) > steps:
            stride = max(1, len(out) // steps)
            sampled = out[::stride]
            if sampled[-1] != out[-1]:
                sampled.append(out[-1])
            return sampled
        return out

    def render(self, label: str = "", width: int = 48) -> str:
        """A text sparkline of the CDF (monotone by construction)."""
        lo, hi = self.values[0], self.values[-1]
        span = (hi - lo) or 1.0
        cells = [" "] * width
        for value in self.values:
            slot = min(width - 1, int((value - lo) / span * (width - 1)))
            cells[slot] = "*"
        return f"{label:<18} |{''.join(cells)}| {lo:.2f}..{hi:.2f}"

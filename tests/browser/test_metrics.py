"""Unit tests for load metrics: critical path, Speed Index, timelines."""

import pytest

from repro.browser.metrics import (
    CriticalHop,
    LoadMetrics,
    ResourceTimeline,
    reconstruct_critical_path,
    speed_index,
)
from repro.pages.resources import Priority


def timeline(url, **kw):
    return ResourceTimeline(url=url, **kw)


class TestSpeedIndex:
    def test_instant_render_is_zero(self):
        assert speed_index([(0.0, 1.0)], horizon=2.0) == pytest.approx(0.0)

    def test_late_render_is_horizon(self):
        si = speed_index([(2.0, 1.0)], horizon=2.0)
        assert si == pytest.approx(2000.0)

    def test_progressive_render_between(self):
        si = speed_index([(1.0, 1.0), (2.0, 1.0)], horizon=2.0)
        assert 0 < si < 2000.0
        assert si == pytest.approx(1500.0)

    def test_no_events_falls_back_to_horizon(self):
        assert speed_index([], horizon=3.0) == pytest.approx(3000.0)

    def test_earlier_renders_lower_si(self):
        early = speed_index([(0.5, 1.0), (1.0, 1.0)], horizon=2.0)
        late = speed_index([(1.5, 1.0), (2.0, 1.0)], horizon=2.0)
        assert early < late

    def test_weights_matter(self):
        heavy_early = speed_index([(0.5, 9.0), (2.0, 1.0)], horizon=2.0)
        heavy_late = speed_index([(0.5, 1.0), (2.0, 9.0)], horizon=2.0)
        assert heavy_early < heavy_late


class TestCriticalPath:
    def test_single_resource_chain(self):
        timelines = {
            "root": timeline(
                "root",
                discovered_at=0.0,
                fetch_started_at=0.0,
                fetched_at=1.0,
                processed_at=1.5,
            )
        }
        hops = reconstruct_critical_path(timelines, onload_at=1.5)
        kinds = [(hop.kind, hop.duration) for hop in hops]
        assert ("network", pytest.approx(1.0)) in kinds
        assert ("cpu", pytest.approx(0.5)) in kinds

    def test_chain_walks_discovery_parents(self):
        timelines = {
            "root": timeline(
                "root",
                discovered_at=0.0,
                fetch_started_at=0.0,
                fetched_at=1.0,
                processed_at=1.2,
            ),
            "child": timeline(
                "child",
                discovered_at=1.2,
                discovered_from="root",
                fetch_started_at=1.2,
                fetched_at=2.0,
                processed_at=2.5,
            ),
        }
        hops = reconstruct_critical_path(timelines, onload_at=2.5)
        urls = {hop.url for hop in hops}
        assert urls == {"root", "child"}
        network = sum(h.duration for h in hops if h.kind == "network")
        assert network == pytest.approx(1.8)

    def test_unreferenced_resources_ignored(self):
        timelines = {
            "root": timeline(
                "root",
                discovered_at=0.0,
                fetch_started_at=0.0,
                fetched_at=1.0,
            ),
            "junk": timeline(
                "junk",
                referenced=False,
                discovered_at=0.0,
                fetch_started_at=0.0,
                fetched_at=99.0,
            ),
        }
        hops = reconstruct_critical_path(timelines, onload_at=1.0)
        assert all(hop.url == "root" for hop in hops)

    def test_empty_timelines(self):
        assert reconstruct_critical_path({}, onload_at=1.0) == []

    def test_hops_are_chronological(self):
        timelines = {
            "root": timeline(
                "root",
                discovered_at=0.0,
                fetch_started_at=0.1,
                fetched_at=1.0,
                processed_at=1.4,
            ),
            "leaf": timeline(
                "leaf",
                discovered_at=1.4,
                discovered_from="root",
                fetch_started_at=1.5,
                fetched_at=2.2,
            ),
        }
        hops = reconstruct_critical_path(timelines, onload_at=2.2)
        starts = [hop.start for hop in hops]
        assert starts == sorted(starts)


class TestLoadMetricsHelpers:
    def _metrics(self):
        timelines = {
            "a": timeline(
                "a",
                priority=Priority.PRELOAD,
                discovered_at=0.5,
                fetch_started_at=0.5,
                fetched_at=1.0,
            ),
            "b": timeline(
                "b",
                priority=Priority.UNIMPORTANT,
                discovered_at=2.0,
                fetch_started_at=2.0,
                fetched_at=3.0,
            ),
            "junk": timeline("junk", referenced=False, discovered_at=0.1),
        }
        return LoadMetrics(
            page="p",
            plt=3.0,
            aft=2.0,
            speed_index=1000.0,
            onload_at=3.0,
            cpu_busy_time=1.0,
            bytes_fetched=100.0,
            wasted_bytes=0.0,
            timelines=timelines,
        )

    def test_discovery_complete_all_vs_high(self):
        metrics = self._metrics()
        assert metrics.discovery_complete_at() == 2.0
        assert metrics.discovery_complete_at(high_priority_only=True) == 0.5

    def test_fetch_complete(self):
        metrics = self._metrics()
        assert metrics.fetch_complete_at() == 3.0
        assert metrics.fetch_complete_at(high_priority_only=True) == 1.0

    def test_referenced_timelines_excludes_junk(self):
        metrics = self._metrics()
        urls = {t.url for t in metrics.referenced_timelines()}
        assert urls == {"a", "b"}

    def test_network_wait_fraction_bounds(self):
        metrics = self._metrics()
        metrics.critical_path = [
            CriticalHop("a", "network", 0.0, 1.0),
            CriticalHop("a", "cpu", 1.0, 4.0),
        ]
        assert metrics.network_wait_fraction == pytest.approx(0.25)

    def test_network_wait_fraction_empty_path(self):
        metrics = self._metrics()
        assert metrics.network_wait_fraction == 0.0

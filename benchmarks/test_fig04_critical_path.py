"""Fig 4 (+ Sec 6.1 text): critical-path time spent waiting on the network.

Paper: with HTTP/2, over 30% of the median page's critical path waits on
the network; Vroom cuts the median page's network wait by ~24%.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments import figures
from repro.experiments.report import print_figure


def test_fig04_critical_path(benchmark, corpus_size):
    series = run_once(benchmark, figures.fig4_critical_path, count=corpus_size)
    print_figure(
        "Fig 4: fraction of critical path waiting on network",
        series,
        paper_values={
            "http2_network_fraction": 0.30,
            "vroom_network_fraction": 0.23,
        },
    )
    assert median(series["http2_network_fraction"]) > 0.15
    assert median(series["vroom_network_fraction"]) < median(
        series["http2_network_fraction"]
    )

"""Running configurations over corpora and collecting distributions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.baselines.configs import run_config
from repro.browser.metrics import LoadMetrics
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.replay.recorder import record_snapshot


@dataclass
class ExperimentRun:
    """Distributions of one metric across a corpus, per configuration."""

    metric: str
    values: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, config: str, value: float) -> None:
        self.values.setdefault(config, []).append(value)

    def series(self, config: str) -> List[float]:
        return self.values[config]


def load_once(
    page: PageBlueprint,
    config: str,
    stamp: Optional[LoadStamp] = None,
    **kwargs,
) -> LoadMetrics:
    """Record one snapshot of ``page`` and load it under ``config``."""
    stamp = stamp or LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    snapshot = page.materialize(stamp)
    store = record_snapshot(snapshot)
    return run_config(config, page, snapshot, store, **kwargs)


def sweep_configs(
    pages: Iterable[PageBlueprint],
    configs: Iterable[str],
    metric: Callable[[LoadMetrics], float] = lambda metrics: metrics.plt,
    metric_name: str = "plt",
    stamp: Optional[LoadStamp] = None,
    per_page_hook: Optional[
        Callable[[PageBlueprint, str, LoadMetrics], None]
    ] = None,
) -> ExperimentRun:
    """Load every page under every configuration; collect one metric."""
    stamp = stamp or LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    run = ExperimentRun(metric=metric_name)
    configs = list(configs)
    for page in pages:
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        for config in configs:
            metrics = run_config(config, page, snapshot, store)
            run.add(config, metric(metrics))
            if per_page_hook is not None:
                per_page_hook(page, config, metrics)
    return run

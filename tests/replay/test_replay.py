"""Tests for the record-and-replay harness."""

import pytest

from repro.replay.recorder import domain_rtt, record_snapshot
from repro.replay.replayer import build_servers
from repro.replay.store import RecordedResponse


class TestRecorder:
    def test_records_every_resource(self, snapshot):
        store = record_snapshot(snapshot)
        assert set(store.urls()) == set(snapshot.urls())

    def test_records_bodies_for_documents(self, snapshot):
        store = record_snapshot(snapshot)
        for doc in snapshot.documents():
            recorded = store.lookup(doc.url)
            assert recorded.is_html
            assert recorded.body == doc.body

    def test_total_bytes_match(self, snapshot):
        store = record_snapshot(snapshot)
        assert store.total_bytes() == snapshot.total_bytes()

    def test_domain_rtts_deterministic_and_bounded(self, snapshot):
        store = record_snapshot(snapshot)
        for domain in store.domains():
            rtt = store.domain_rtts[domain]
            assert rtt == domain_rtt(domain)
            assert 0.0 < rtt < 0.5

    def test_distinct_domains_distinct_rtts(self):
        assert domain_rtt("a.com") != domain_rtt("b.com")


class TestReplayer:
    def test_one_server_per_domain(self, snapshot, store):
        servers = build_servers(store)
        assert set(servers) == set(store.domains())

    def test_server_serves_recorded_sizes(self, snapshot, store):
        servers = build_servers(store)
        resource = snapshot.root
        response = servers[resource.domain].respond(resource.url)
        assert response.size == resource.size

    def test_server_rejects_foreign_urls(self, snapshot, store):
        servers = build_servers(store)
        domains = snapshot.domains()
        if len(domains) < 2:
            pytest.skip("need two domains")
        other = next(
            r for r in snapshot.all_resources() if r.domain == domains[1]
        )
        assert servers[domains[0]].respond(other.url) is None

    def test_decorator_applied_to_html_only(self, snapshot, store):
        def decorate(recorded, response, is_push):
            if recorded.is_html:
                response.pushes = ["marker"]
            return response

        servers = build_servers(store, decorator=decorate)
        root = snapshot.root
        assert servers[root.domain].respond(root.url).pushes == ["marker"]
        media = next(
            r for r in snapshot.all_resources() if not r.processable
        )
        assert servers[media.domain].respond(media.url).pushes == []

    def test_extra_content_served(self, store):
        extra = {
            "extra.com/stale.js": RecordedResponse(
                url="extra.com/stale.js",
                domain="extra.com",
                size=777,
                is_html=False,
            )
        }
        servers = build_servers(store, extra_content=extra)
        assert "extra.com" in servers
        response = servers["extra.com"].respond("extra.com/stale.js")
        assert response.size == 777

    def test_uncacheable_resources_flagged(self, snapshot, store):
        servers = build_servers(store)
        uncacheable = [
            r for r in snapshot.all_resources() if not r.spec.cacheable
        ]
        if not uncacheable:
            pytest.skip("corpus page has no uncacheable resources")
        resource = uncacheable[0]
        response = servers[resource.domain].respond(resource.url)
        assert not response.cacheable

    def test_per_resource_think_time_honoured(self, snapshot, store):
        slow = [
            r
            for r in snapshot.all_resources()
            if r.spec.server_think_time is not None
        ]
        if not slow:
            pytest.skip("no per-resource think times on this page")
        servers = build_servers(store)
        resource = slow[0]
        response = servers[resource.domain].respond(resource.url)
        assert response.think_time == resource.spec.server_think_time

"""Known-positive snippets: every line tagged ``# expect: CODE`` must be
flagged with that rule when scanned as a *pure* layer module.

The file is never imported by the test suite — it is read as text and fed
to ``scan_source``.  It still has to parse, and it stays clean under the
repo's ruff configuration (no unused imports, no undefined names).
"""

import os
import random
import sys
import time

import numpy as np


def iterate_sets():
    urls = {"a.com/x", "b.com/y"}
    more = frozenset(["b.com/y", "c.com/z"])
    out = []
    for url in urls | more:  # expect: DET101
        out.append(url)
    ordered = list({3, 1, 2})  # expect: DET101
    joined = ",".join(urls)  # expect: DET101
    return out, ordered, joined


def iterate_keys(mapping):
    out = []
    for key in mapping.keys():  # expect: DET102
        out.append(key)
    return out


def unseeded_randomness():
    rng = random.Random()  # expect: DET103
    draw = random.random()  # expect: DET103
    arr = np.random.rand(3)  # expect: DET103
    gen = np.random.default_rng()  # expect: DET103
    return rng, draw, arr, gen


def wall_clock():
    started = time.time()  # expect: DET104
    mark = time.monotonic()  # expect: DET104
    return started, mark


def hash_ordering(items, mapping):
    ranked = sorted(items, key=hash)  # expect: DET105
    first = sorted(items, key=id)  # expect: DET105
    value = mapping[id(items)]  # expect: DET105
    token = hash("stable-string")  # expect: DET105
    return ranked, first, value, token


def impure_io(path):
    print("progress")  # expect: PUR201
    handle = open(path)  # expect: PUR201
    home = os.environ["HOME"]  # expect: PUR201
    sys.stdout.write("x")  # expect: PUR201
    return handle, home

"""Unit tests for URL flux (rotation, nonces, devices, personalization)."""

import pytest

from repro.pages.dynamics import (
    LoadStamp,
    resolve_size,
    resolve_url,
    rotation_epoch,
    url_is_shared,
)
from repro.pages.resources import ResourceSpec, ResourceType


def make_spec(**overrides):
    base = dict(
        name="res", rtype=ResourceType.IMAGE, domain="a.com", size=1000
    )
    base.update(overrides)
    return ResourceSpec(**base)


STAMP = LoadStamp(when_hours=100.0)


class TestLoadStamp:
    def test_device_class_phone(self):
        assert LoadStamp(when_hours=0, device="nexus6").device_class == "phone"
        assert (
            LoadStamp(when_hours=0, device="oneplus3").device_class == "phone"
        )

    def test_device_class_tablet(self):
        assert (
            LoadStamp(when_hours=0, device="nexus10").device_class == "tablet"
        )

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            LoadStamp(when_hours=0, device="iphone99").device_class

    def test_back_to_back_same_instant_new_nonce(self):
        b2b = STAMP.back_to_back()
        assert b2b.when_hours == STAMP.when_hours
        assert b2b.nonce != STAMP.nonce
        assert b2b.user == STAMP.user

    def test_earlier_shifts_clock(self):
        earlier = STAMP.earlier(24.0)
        assert earlier.when_hours == STAMP.when_hours - 24.0


class TestRotation:
    def test_non_rotating_has_no_epoch(self):
        assert rotation_epoch(make_spec(), 50.0) is None

    def test_epoch_advances_with_time(self):
        spec = make_spec(lifetime_hours=6.0)
        assert rotation_epoch(spec, 5.9) == 0
        assert rotation_epoch(spec, 6.1) == 1
        assert rotation_epoch(spec, 59.0) == 9

    def test_zero_lifetime_rejected(self):
        spec = make_spec(lifetime_hours=0.0)
        with pytest.raises(ValueError):
            rotation_epoch(spec, 1.0)

    def test_rotating_url_changes_across_epochs(self):
        spec = make_spec(lifetime_hours=6.0)
        url_now = resolve_url(spec, LoadStamp(when_hours=100.0))
        url_same_epoch = resolve_url(spec, LoadStamp(when_hours=101.0))
        url_next_epoch = resolve_url(spec, LoadStamp(when_hours=108.0))
        assert url_now == url_same_epoch
        assert url_now != url_next_epoch


class TestResolveUrl:
    def test_deterministic(self):
        spec = make_spec()
        assert resolve_url(spec, STAMP) == resolve_url(spec, STAMP)

    def test_stable_spec_ignores_nonce(self):
        spec = make_spec()
        assert url_is_shared(spec, STAMP, STAMP.back_to_back())

    def test_unpredictable_differs_per_nonce(self):
        spec = make_spec(unpredictable=True)
        assert not url_is_shared(spec, STAMP, STAMP.back_to_back())

    def test_device_variant_by_class_not_model(self):
        spec = make_spec(device_dependent=True)
        nexus6 = LoadStamp(when_hours=100.0, device="nexus6")
        oneplus = LoadStamp(when_hours=100.0, device="oneplus3")
        tablet = LoadStamp(when_hours=100.0, device="nexus10")
        assert resolve_url(spec, nexus6) == resolve_url(spec, oneplus)
        assert resolve_url(spec, nexus6) != resolve_url(spec, tablet)

    def test_personalized_differs_per_user(self):
        spec = make_spec(personalized=True)
        alice = LoadStamp(when_hours=100.0, user="alice")
        bob = LoadStamp(when_hours=100.0, user="bob")
        assert resolve_url(spec, alice) != resolve_url(spec, bob)
        assert resolve_url(spec, alice) == resolve_url(spec, alice)

    def test_url_carries_domain_and_extension(self):
        spec = make_spec(rtype=ResourceType.FONT)
        url = resolve_url(spec, STAMP)
        assert url.startswith("a.com/")
        assert url.endswith(".woff2")

    def test_extensions_by_type(self):
        for rtype, ext in [
            (ResourceType.HTML, ".html"),
            (ResourceType.CSS, ".css"),
            (ResourceType.JS, ".js"),
            (ResourceType.IMAGE, ".jpg"),
            (ResourceType.JSON, ".json"),
            (ResourceType.VIDEO, ".mp4"),
        ]:
            assert resolve_url(make_spec(rtype=rtype), STAMP).endswith(ext)


class TestResolveSize:
    def test_stable_size(self):
        assert resolve_size(make_spec(size=500), STAMP) == 500

    def test_tablet_gets_bigger_device_variants(self):
        spec = make_spec(size=1000, device_dependent=True)
        phone = LoadStamp(when_hours=1.0, device="nexus6")
        tablet = LoadStamp(when_hours=1.0, device="nexus10")
        assert resolve_size(spec, tablet) > resolve_size(spec, phone)

    def test_size_never_below_one(self):
        spec = make_spec(size=1)
        assert resolve_size(spec, STAMP) >= 1

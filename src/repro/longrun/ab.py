"""Paired A/B lanes: two service policies, one identical workload.

Because the arrival stream is a pure function of the spec's workload
fields (seed, rate, Zipf shape, device mix, user pool, horizon) and the
service's state can never influence the generator, two specs that agree
on those fields see the *same* lookups at the same simulated times.
That turns a policy comparison into a paired-difference experiment:
per-rollup-window deltas on identical traffic, no variance from the
workload itself.

``run_paired`` refuses overrides that touch the stream-defining fields
— an A/B comparison over different streams would silently measure the
workload, not the policy.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.longrun.runner import LongRunner
from repro.scenario.spec import ScenarioSpec

#: Spec fields that define the workload stream (and the row alignment);
#: A/B overrides must leave every one of them alone.
STREAM_FIELDS = frozenset(
    {
        "corpus",
        "pages",
        "corpus_seed",
        "horizon_hours",
        "start_hour",
        "rate_per_hour",
        "zipf_exponent",
        "phone_fraction",
        "user_pool",
        "workload_seed",
        "rollup_hours",
    }
)

#: Per-window metrics compared lane-to-lane (delta = B - A).
_PAIRED_METRICS = ("served_rate", "p50_ms", "p99_ms", "mean_ms")


def _check_overrides(label: str, overrides: Dict[str, object]) -> None:
    spec_fields = set(ScenarioSpec.__dataclass_fields__)
    unknown = sorted(set(overrides) - spec_fields)
    if unknown:
        raise ValueError(f"lane {label}: unknown spec fields {unknown}")
    touched = sorted(set(overrides) & STREAM_FIELDS)
    if touched:
        raise ValueError(
            f"lane {label}: overrides {touched} would change the workload "
            "stream; A/B lanes must share it exactly"
        )


def run_paired(
    spec: ScenarioSpec,
    overrides_a: Optional[Dict[str, object]] = None,
    overrides_b: Optional[Dict[str, object]] = None,
    label_a: str = "A",
    label_b: str = "B",
) -> dict:
    """Run two policy variants of ``spec`` against the identical stream.

    Returns both full reports plus paired per-window delta rows and a
    summary (mean/min/max of each delta series, B minus A).
    """
    overrides_a = dict(overrides_a or {})
    overrides_b = dict(overrides_b or {})
    _check_overrides(label_a, overrides_a)
    _check_overrides(label_b, overrides_b)
    spec_a = replace(spec, **overrides_a)
    spec_b = replace(spec, **overrides_b)

    report_a = LongRunner(spec_a).run_to(spec_a.horizon_hours).report()
    report_b = LongRunner(spec_b).run_to(spec_b.horizon_hours).report()

    rows_a, rows_b = report_a["rollups"], report_b["rollups"]
    if len(rows_a) != len(rows_b):
        raise RuntimeError(
            "paired lanes produced different window counts "
            f"({len(rows_a)} vs {len(rows_b)}) — stream invariant broken"
        )
    paired_rows: List[dict] = []
    series: Dict[str, List[float]] = {name: [] for name in _PAIRED_METRICS}
    for row_a, row_b in zip(rows_a, rows_b):
        if row_a["lookups"] != row_b["lookups"]:
            raise RuntimeError(
                f"window {row_a['window']}: lanes saw different traffic "
                f"({row_a['lookups']} vs {row_b['lookups']} lookups) — "
                "stream invariant broken"
            )
        deltas = {
            name: round(row_b[name] - row_a[name], 6)
            for name in _PAIRED_METRICS
        }
        for name in _PAIRED_METRICS:
            series[name].append(deltas[name])
        paired_rows.append(
            {
                "window": row_a["window"],
                "lookups": row_a["lookups"],
                "deltas": deltas,
            }
        )

    summary = {}
    for name in _PAIRED_METRICS:
        values = series[name]
        summary[f"{name}_delta"] = {
            "mean": round(sum(values) / len(values), 6) if values else 0.0,
            "min": min(values) if values else 0.0,
            "max": max(values) if values else 0.0,
        }
    totals_a, totals_b = report_a["totals"], report_b["totals"]
    for key in ("hit_rate", "stale_hit_rate", "miss_rate"):
        summary[f"{key}_delta"] = round(totals_b[key] - totals_a[key], 6)

    return {
        "lane_a": {"label": label_a, "overrides": overrides_a,
                   "report": report_a},
        "lane_b": {"label": label_b, "overrides": overrides_b,
                   "report": report_b},
        "stream_identical": True,
        "windows": paired_rows,
        "summary": summary,
    }

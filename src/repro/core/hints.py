"""Dependency hints: the response-header vocabulary of Table 1.

A Vroom-compliant server answers a request for an HTML object with three
ordered URL lists carried in response headers:

* ``Link`` (``rel=preload``) — resources the client must parse/execute,
  fetched at the highest priority, in processing order;
* ``x-semi-important`` — processable but lazily-evaluated resources
  (async scripts and the like);
* ``x-unimportant`` — everything that never needs parsing or executing
  (images, fonts, media) plus anything descending from third-party HTML.

Hints also carry the originating document so accuracy analyses can tie
each hint back to the response that delivered it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.pages.resources import Priority

#: Header names, in decreasing priority order (Table 1).
HEADER_BY_PRIORITY = {
    Priority.PRELOAD: "link-preload",
    Priority.SEMI_IMPORTANT: "x-semi-important",
    Priority.UNIMPORTANT: "x-unimportant",
}

#: The headers a response must expose for a cross-origin scheduler script
#: to read them (Sec 5.2, footnote 7).
EXPOSED_HEADERS = ("Link", "x-semi-important", "x-unimportant")


@dataclass(frozen=True)
class DependencyHint:
    """One hinted URL with its priority class and processing order."""

    url: str
    priority: Priority
    #: Position in the client's expected processing order (lower first).
    order: int = 0
    #: Estimated size (lets the client budget; taken from server loads).
    size_estimate: int = 0

    @property
    def header(self) -> str:
        return HEADER_BY_PRIORITY[self.priority]


@dataclass
class HintBundle:
    """All hints attached to one HTML response, grouped by header."""

    source_url: str
    hints: List[DependencyHint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.hints)

    def __iter__(self):
        return iter(self.hints)

    def add(self, hint: DependencyHint) -> None:
        self.hints.append(hint)

    def urls(self) -> List[str]:
        return [hint.url for hint in self.hints]

    def by_priority(self, priority: Priority) -> List[DependencyHint]:
        """Hints in one class, sorted by processing order (Sec 5.1)."""
        selected = [hint for hint in self.hints if hint.priority is priority]
        selected.sort(key=lambda hint: hint.order)
        return selected

    def headers(self) -> Dict[str, List[str]]:
        """Render the bundle the way it would appear on the wire."""
        rendered: Dict[str, List[str]] = {}
        for priority, header in HEADER_BY_PRIORITY.items():
            urls = [hint.url for hint in self.by_priority(priority)]
            if urls:
                rendered[header] = urls
        return rendered

    @staticmethod
    def merge(bundles: Iterable["HintBundle"]) -> "HintBundle":
        """Union of several bundles, first occurrence of each URL wins."""
        merged = HintBundle(source_url="<merged>")
        seen = set()
        for bundle in bundles:
            for hint in bundle:
                if hint.url not in seen:
                    seen.add(hint.url)
                    merged.add(hint)
        return merged


def bundle_from_hints(
    source_url: str, hints: Iterable[DependencyHint]
) -> HintBundle:
    """Build a bundle, deduplicating URLs while preserving order."""
    bundle = HintBundle(source_url=source_url)
    seen = set()
    for hint in hints:
        if hint.url in seen or hint.url == source_url:
            continue
        seen.add(hint.url)
        bundle.add(hint)
    return bundle


def parse_headers(
    source_url: str, headers: Dict[str, List[str]]
) -> HintBundle:
    """Inverse of :meth:`HintBundle.headers` (order restored per class)."""
    priority_by_header = {
        header: priority for priority, header in HEADER_BY_PRIORITY.items()
    }
    bundle = HintBundle(source_url=source_url)
    order = 0
    for header, urls in headers.items():
        priority = priority_by_header.get(header)
        if priority is None:
            raise ValueError(f"unknown hint header {header!r}")
        for url in urls:
            bundle.add(DependencyHint(url=url, priority=priority, order=order))
            order += 1
    return bundle

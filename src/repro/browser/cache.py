"""Browser HTTP cache with freshness lifetimes.

Entries are keyed by URL and stamped with the wall-clock hour they were
stored.  A lookup at hour ``h`` hits only if the entry is still fresh
(``h - stored <= max_age_hours``).  Warm-cache experiments (Fig 20) seed a
cache from a prior load and then check hit/miss behaviour hours or days
later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.pages.resources import Resource


@dataclass
class CacheEntry:
    url: str
    size: int
    stored_at_hours: float
    max_age_hours: float

    def fresh_at(self, when_hours: float) -> bool:
        age = when_hours - self.stored_at_hours
        return 0.0 <= age <= self.max_age_hours


class BrowserCache:
    """URL-keyed cache honouring per-resource cacheability and max-age."""

    def __init__(self) -> None:
        self._entries: Dict[str, CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def store(
        self,
        url: str,
        size: int,
        *,
        when_hours: float,
        max_age_hours: float,
        cacheable: bool = True,
    ) -> None:
        if not cacheable or max_age_hours <= 0:
            return
        self._entries[url] = CacheEntry(
            url=url,
            size=size,
            stored_at_hours=when_hours,
            max_age_hours=max_age_hours,
        )

    def lookup(self, url: str, when_hours: float) -> Optional[CacheEntry]:
        entry = self._entries.get(url)
        if entry is not None and entry.fresh_at(when_hours):
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def has_fresh(self, url: str, when_hours: float) -> bool:
        entry = self._entries.get(url)
        return entry is not None and entry.fresh_at(when_hours)

    def seed_from_snapshot(
        self, resources: Iterable[Resource], when_hours: float
    ) -> int:
        """Populate the cache as if ``resources`` were fetched at that time.

        Returns the number of entries stored.
        """
        stored = 0
        for resource in resources:
            if not resource.spec.cacheable:
                continue
            self.store(
                resource.url,
                resource.size,
                when_hours=when_hours,
                max_age_hours=resource.spec.max_age_hours,
            )
            stored += 1
        return stored

    def fresh_urls(self, when_hours: float) -> Dict[str, CacheEntry]:
        return {
            url: entry
            for url, entry in self._entries.items()
            if entry.fresh_at(when_hours)
        }

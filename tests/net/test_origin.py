"""Unit tests for the origin server model."""

import pytest

from repro.calibration import SERVER_HTML_THINK_TIME, SERVER_THINK_TIME
from repro.net.origin import OriginServer, Response, static_responder


class TestResponse:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Response(url="a.com/x", size=-1)

    def test_defaults(self):
        response = Response(url="a.com/x", size=10)
        assert response.hints == []
        assert response.pushes == []
        assert response.cacheable


class TestOriginServer:
    def test_counters(self):
        server = OriginServer(
            "a.com", static_responder({"a.com/x.js": 100}), 0.02
        )
        server.respond("a.com/x.js")
        server.respond("a.com/x.js", is_push=True)
        assert server.requests_served == 1
        assert server.pushes_sent == 1

    def test_missing_content_is_none_and_uncounted(self):
        server = OriginServer("a.com", static_responder({}), 0.02)
        assert server.respond("a.com/missing") is None
        assert server.requests_served == 0


class TestStaticResponder:
    def test_sizes_served(self):
        responder = static_responder({"a.com/x.js": 123})
        response = responder("a.com/x.js", False)
        assert response.size == 123

    def test_html_gets_generation_think_time(self):
        responder = static_responder(
            {"a.com/p.html": 10, "a.com/x.js": 10},
            html_urls={"a.com/p.html"},
        )
        assert responder("a.com/p.html", False).think_time == SERVER_HTML_THINK_TIME
        assert responder("a.com/x.js", False).think_time == SERVER_THINK_TIME

"""The calibration regression guard as a test."""

from repro.experiments.regression import (
    EXPECTATIONS,
    Expectation,
    check_calibration,
    measure_medians,
)


class TestExpectation:
    def test_within_band(self):
        exp = Expectation("x", 10.0, 0.1)
        assert exp.check(10.5) == ""
        assert exp.check(9.5) == ""

    def test_outside_band(self):
        exp = Expectation("x", 10.0, 0.1)
        assert "outside" in exp.check(12.0)
        assert "outside" in exp.check(8.0)


class TestGuard:
    def test_calibration_healthy(self):
        """The headline medians stay pinned.  If this fails after an
        intentional recalibration, update EXPECTATIONS and
        EXPERIMENTS.md together."""
        failures = check_calibration(count=8)
        assert not failures, "\n".join(failures)

    def test_measure_covers_all_metrics(self):
        measured = measure_medians(count=2)
        assert set(measured) == {exp.metric for exp in EXPECTATIONS}

"""Tests for the content-addressed snapshot/store cache."""

import pickle

from repro.baselines.configs import run_config
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.cache import (
    SnapshotCache,
    blueprint_fingerprint,
    materialize_cached,
    stamp_key,
)
from repro.replay.recorder import record_snapshot


def _stamp(**overrides):
    defaults = dict(when_hours=DEFAULT_EVAL_HOUR)
    defaults.update(overrides)
    return LoadStamp(**defaults)


class TestFingerprint:
    def test_identically_built_blueprints_collide(self):
        a = news_sports_corpus(count=1, seed=42)[0]
        b = news_sports_corpus(count=1, seed=42)[0]
        assert a is not b
        assert blueprint_fingerprint(a) == blueprint_fingerprint(b)

    def test_different_seeds_differ(self):
        a = news_sports_corpus(count=1, seed=42)[0]
        b = news_sports_corpus(count=1, seed=43)[0]
        assert blueprint_fingerprint(a) != blueprint_fingerprint(b)

    def test_spec_edit_changes_fingerprint(self):
        page = news_sports_corpus(count=1)[0]
        before = blueprint_fingerprint(page)
        spec = next(iter(page.specs.values()))
        spec.size += 1
        assert blueprint_fingerprint(page) != before

    def test_no_delimiter_bleed_between_fields(self):
        """Length-prefixing: adjacent fields must not be able to trade
        characters and collide ("ab"+"c" vs "a"+"bc")."""
        from repro.pages.page import PageBlueprint

        a = PageBlueprint(name="ab", root="c")
        b = PageBlueprint(name="a", root="bc")
        assert blueprint_fingerprint(a) != blueprint_fingerprint(b)

    def test_rekeying_spec_map_changes_fingerprint(self):
        """The map keys themselves are hashed: re-keying a spec without
        editing it must miss the cache, not alias the old entry."""
        page = news_sports_corpus(count=1)[0]
        before = blueprint_fingerprint(page)
        old_key = next(iter(page.specs))
        page.specs["rekeyed"] = page.specs.pop(old_key)
        assert blueprint_fingerprint(page) != before

    def test_stamp_key_covers_all_flux_inputs(self):
        base = _stamp()
        for other in (
            _stamp(when_hours=DEFAULT_EVAL_HOUR + 1),
            _stamp(device="nexus10"),
            _stamp(user="other"),
            _stamp(nonce=5),
        ):
            assert stamp_key(base) != stamp_key(other)


class TestSnapshotCache:
    def test_hit_returns_same_objects(self):
        cache = SnapshotCache()
        page = news_sports_corpus(count=1)[0]
        snap1, store1 = cache.materialized(page, _stamp())
        snap2, store2 = cache.materialized(page, _stamp())
        assert snap1 is snap2 and store1 is store2
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_hit_load_identical_to_fresh_recording(self):
        cache = SnapshotCache()
        page = news_sports_corpus(count=1)[0]
        stamp = _stamp()
        cache.materialized(page, stamp)  # prime
        snap_hit, store_hit = cache.materialized(page, stamp)
        snap_cold = page.materialize(stamp)
        store_cold = record_snapshot(snap_cold)
        for config in ("http2", "vroom"):
            hit = run_config(config, page, snap_hit, store_hit)
            cold = run_config(config, page, snap_cold, store_cold)
            assert hit.plt == cold.plt
            assert hit.aft == cold.aft
            assert hit.speed_index == cold.speed_index
            assert hit.wasted_bytes == cold.wasted_bytes

    def test_distinct_stamps_never_collide(self):
        cache = SnapshotCache()
        page = news_sports_corpus(count=1)[0]
        snap_a, _ = cache.materialized(page, _stamp(nonce=0))
        snap_b, _ = cache.materialized(page, _stamp(nonce=1))
        assert snap_a is not snap_b
        assert cache.stats.misses == 2

    def test_distinct_seeds_never_collide(self):
        cache = SnapshotCache()
        a = news_sports_corpus(count=1, seed=7)[0]
        b = news_sports_corpus(count=1, seed=8)[0]
        snap_a, _ = cache.materialized(a, _stamp())
        snap_b, _ = cache.materialized(b, _stamp())
        assert snap_a is not snap_b
        assert {snap_a.page, snap_b.page} == {a.name, b.name}

    def test_content_addressed_across_objects(self):
        cache = SnapshotCache()
        a = news_sports_corpus(count=1, seed=42)[0]
        b = news_sports_corpus(count=1, seed=42)[0]
        cache.materialized(a, _stamp())
        cache.materialized(b, _stamp())
        assert cache.stats.hits == 1

    def test_lru_eviction(self):
        cache = SnapshotCache(max_entries=2)
        pages = news_sports_corpus(count=3)
        for page in pages:
            cache.materialized(page, _stamp())
        assert len(cache) == 2
        cache.materialized(pages[0], _stamp())  # evicted -> miss again
        assert cache.stats.misses == 4

    def test_empty_cache_is_truthy(self):
        assert SnapshotCache()

    def test_cached_pair_pickles(self):
        cache = SnapshotCache()
        page = news_sports_corpus(count=1)[0]
        snapshot, store = cache.materialized(page, _stamp())
        copy_snapshot, copy_store = pickle.loads(
            pickle.dumps((snapshot, store))
        )
        assert copy_snapshot.urls() == snapshot.urls()
        assert copy_store.urls() == store.urls()

    def test_materialize_cached_uses_supplied_cache(self):
        cache = SnapshotCache()
        page = news_sports_corpus(count=1)[0]
        materialize_cached(page, _stamp(), cache)
        materialize_cached(page, _stamp(), cache)
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load", "--configs", "warp"])


class TestCommands:
    def test_configs_lists_everything(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "vroom" in out
        assert "http2" in out
        assert "polaris" in out

    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "lte" in out and "2g" in out

    def test_load_prints_metrics(self, capsys):
        assert main(["load", "--configs", "http2", "--index", "0"]) == 0
        out = capsys.readouterr().out
        assert "PLT" in out
        assert "http2" in out

    def test_waterfall(self, capsys):
        assert main(["waterfall", "--config", "http2", "--rows", "5"]) == 0
        out = capsys.readouterr().out
        assert "waterfall of" in out
        assert "plt" in out

    def test_audit(self, capsys):
        assert main(["audit", "--rows", "2"]) == 0
        out = capsys.readouterr().out
        assert "hints on" in out
        assert "predictable subset" in out
        assert "FN" in out

    def test_figure_runs_small(self, capsys):
        assert main(["figure", "flux_calibration", "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "flux" in out

    def test_figure_unknown_name(self, capsys):
        assert main(["figure", "fig99_nonexistent"]) == 2
        out = capsys.readouterr().out
        assert "unknown figure" in out

    def test_load_other_corpus(self, capsys):
        assert main(
            ["load", "--corpus", "alexa100", "--configs", "http2"]
        ) == 0
        out = capsys.readouterr().out
        assert "alexa" in out

    def test_device_option(self, capsys):
        assert main(
            ["load", "--configs", "cpu-bound", "--device", "oneplus3"]
        ) == 0

    def test_report(self, capsys):
        assert main(["report", "--configs", "http2", "vroom"]) == 0
        out = capsys.readouterr().out
        assert "# Report:" in out
        assert "critical path" in out
        assert "pushed" in out

    def test_load_from_blueprint_file(self, tmp_path, capsys, page):
        from repro.pages.serialization import dump_blueprint

        path = str(tmp_path / "custom.json")
        dump_blueprint(page, path)
        assert main(
            ["load", "--blueprint", path, "--configs", "http2"]
        ) == 0
        out = capsys.readouterr().out
        assert page.name in out


class TestServiceCommand:
    def test_smoke_passes_and_writes_report(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "smoke.json")
        assert main(["service", "--smoke", "--report", path]) == 0
        out = capsys.readouterr().out
        assert "smoke:" in out
        assert "hit rate" in out
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["benchmark"] == "service-smoke"
        assert payload["report"]["totals"]["lookups"] == 5000

    def test_full_run_prints_summary_and_sweep(self, tmp_path, capsys):
        path = str(tmp_path / "bench.json")
        assert main(
            [
                "service",
                "--pages",
                "6",
                "--lookups",
                "2000",
                "--rate",
                "1000",
                "--bridge-every",
                "0",
                "--budgets",
                "6",
                "60",
                "--report",
                path,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "served 2000 lookups" in out
        assert "stale-hit rate monotone in budget: True" in out


class TestCorpusGuards:
    def test_service_rejects_nonpositive_pages(self, capsys):
        assert main(["service", "--pages", "0", "--report", ""]) == 2
        assert "error:" in capsys.readouterr().err

    def test_service_rejects_nonpositive_lookups(self, capsys):
        assert main(
            ["service", "--lookups", "0", "--report", ""]
        ) == 2
        assert "--lookups" in capsys.readouterr().err

    def test_sweep_rejects_nonpositive_count(self, capsys):
        assert main(["sweep", "--count", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_resilience_rejects_nonpositive_count(self, capsys):
        assert main(["resilience", "--count", "-2"]) == 2
        assert "error:" in capsys.readouterr().err


class TestLongrunCommand:
    def test_smoke_passes_and_writes_report(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "longrun.json")
        assert main(["longrun", "--smoke", "--report", path]) == 0
        out = capsys.readouterr().out
        assert "longrun:" in out
        assert "checkpoint/resume" in out
        assert "fingerprints match True" in out
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["benchmark"] == "longrun"
        assert payload["resume"]["match"] is True
        assert payload["ab"]["stream_identical"] is True

    def test_rejects_nonpositive_hours(self, capsys):
        assert main(["longrun", "--hours", "0", "--report", ""]) == 2
        assert "--hours" in capsys.readouterr().err

    def test_rejects_unknown_corpus(self, capsys):
        assert main(
            ["longrun", "--corpus", "nosuch", "--report", ""]
        ) == 2
        assert "unknown corpus" in capsys.readouterr().err

    def test_rejects_nonpositive_pages(self, capsys):
        assert main(
            ["longrun", "--hours", "2", "--pages", "-1", "--report", ""]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_rejects_checkpoint_outside_horizon(self, capsys):
        assert main(
            [
                "longrun",
                "--hours",
                "2",
                "--checkpoint-at",
                "5",
                "--report",
                "",
            ]
        ) == 2
        assert "--checkpoint-at" in capsys.readouterr().err


class TestBenchCommand:
    def test_engine_smoke_passes_and_writes_report(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "engine.json")
        assert main(["bench", "engine", "--smoke", "--report", path]) == 0
        out = capsys.readouterr().out
        assert "single-stream-drain" in out
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["benchmark"] == "engine"
        rows = {row["scenario"]: row for row in payload["scenarios"]}
        assert rows["push-all-high-rtt"]["event_reduction"] >= 2.0
        assert all(row["bit_identical"] for row in rows.values())

    def test_engine_rejects_unknown_target(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["bench", "nope"])

"""Text reporting: measured series vs the paper's reported numbers."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.stats import Cdf, median


def describe_series(
    name: str, values: Sequence[float], paper: Optional[float] = None
) -> str:
    """One table row: median / quartile summary plus the paper's value."""
    cdf = Cdf(values)
    row = (
        f"{name:<34} n={len(values):>3}  "
        f"p25={cdf.quantile(0.25):7.2f}  "
        f"median={cdf.median:7.2f}  "
        f"p75={cdf.quantile(0.75):7.2f}"
    )
    if paper is not None:
        row += f"  | paper~{paper:6.2f}"
    return row


def print_figure(
    title: str,
    series: Dict[str, Sequence[float]],
    paper_values: Optional[Dict[str, float]] = None,
) -> str:
    """Render a whole figure's series as a text block (also printed)."""
    paper_values = paper_values or {}
    lines = [f"== {title} =="]
    for name, values in series.items():
        if not values:
            lines.append(f"{name:<34} (empty)")
            continue
        lines.append(describe_series(name, values, paper_values.get(name)))
    block = "\n".join(lines)
    print(block)
    return block


def median_table(series: Dict[str, Sequence[float]]) -> Dict[str, float]:
    """Medians per series (used by EXPERIMENTS.md generation)."""
    return {
        name: median(values) for name, values in series.items() if values
    }

"""HintService end to end: determinism, cold start, counters, tenants."""

import pytest

from repro.service.backend import HintService, ServiceConfig, tenant_of
from repro.service.placement import shard_outage_rule
from repro.service.store import StoreEntry


@pytest.fixture(scope="module")
def fleet(corpus):
    return corpus  # six News/Sports pages from the session fixture


def service_config(pages=6, **overrides):
    base = dict(
        pages=pages,
        lookups=800,
        rate_per_hour=1600.0,
        freshness_hours=0.25,
        ttl_hours=6.0,
        crawl_budget_per_hour=24.0,
        seed=11,
    )
    base.update(overrides)
    return ServiceConfig(**base)


class TestConstruction:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            HintService([], service_config(pages=0))

    def test_rejects_fleet_size_mismatch(self, fleet):
        with pytest.raises(ValueError):
            HintService(fleet, service_config(pages=5))

    def test_one_run_per_instance(self, fleet):
        service = HintService(fleet, service_config())
        service.run()
        with pytest.raises(RuntimeError):
            service.run()


class TestDeterminism:
    def test_two_runs_bit_identical(self, fleet):
        first = HintService(fleet, service_config()).run().as_dict()
        second = HintService(fleet, service_config()).run().as_dict()
        assert first == second

    def test_seed_changes_the_run(self, fleet):
        first = HintService(fleet, service_config()).run().as_dict()
        second = HintService(fleet, service_config(seed=12)).run().as_dict()
        assert first != second


class TestColdStartAndWarmup:
    def test_first_lookup_of_every_key_misses(self, fleet):
        report = HintService(fleet, service_config()).run()
        assert report.totals["misses"] > 0
        # The store was empty at t=0: the very first decile serves the
        # least traffic from the store.
        warmup = report.warmup_hit_rate
        assert warmup[0] == min(warmup)
        assert warmup[-1] > warmup[0]

    def test_prewarm_eliminates_misses(self, fleet):
        report = HintService(
            fleet, service_config(prewarm=True, ttl_hours=50.0)
        ).run()
        assert report.totals["misses"] == 0
        assert report.totals["expired"] == 0
        assert report.totals["hit_rate"] == 1.0

    def test_lookups_are_conserved(self, fleet):
        report = HintService(fleet, service_config()).run()
        totals = report.totals
        assert totals["lookups"] == 800
        assert (
            totals["hits"]
            + totals["stale_hits"]
            + totals["misses"]
            + totals["expired"]
            == 800
        )
        assert report.latency["samples"] == 800


class TestCountersAndReport:
    def test_shard_rows_sum_to_totals(self, fleet):
        report = HintService(fleet, service_config()).run()
        assert sum(row["lookups"] for row in report.shards) == 800
        assert sum(row["samples"] for row in report.shards) == 800

    def test_tenants_cover_all_traffic(self, fleet):
        report = HintService(fleet, service_config()).run()
        assert sum(t["lookups"] for t in report.tenants.values()) == 800
        for name in report.tenants:
            assert name == tenant_of(name + "123")

    def test_scheduler_spends_within_budget(self, fleet):
        report = HintService(fleet, service_config()).run()
        scheduler = report.scheduler
        assert scheduler["loads_spent"] > 0
        assert scheduler["budget_utilization"] <= 1.0

    def test_report_dict_is_json_clean(self, fleet):
        import json

        report = HintService(fleet, service_config()).run()
        payload = json.loads(json.dumps(report.as_dict(), sort_keys=True))
        assert payload["totals"]["lookups"] == 800


class TestBridgeSampling:
    def test_sampling_collects_every_nth(self, fleet):
        report = HintService(
            fleet, service_config(bridge_sample_every=100)
        ).run()
        assert [sample.seq for sample in report.samples] == list(
            range(0, 800, 100)
        )

    def test_miss_samples_carry_no_payload(self, fleet):
        report = HintService(
            fleet, service_config(bridge_sample_every=100)
        ).run()
        for sample in report.samples:
            if sample.status in ("miss", "expired"):
                assert sample.payload is None
                assert sample.computed_at_hours is None
            else:
                assert sample.payload is not None
                assert sample.computed_at_hours is not None
                assert sample.computed_at_hours <= sample.when_hours

    def test_disabled_by_default(self, fleet):
        report = HintService(fleet, service_config()).run()
        assert report.samples == []


class TestSchedulerStaleness:
    def test_expired_entry_ranks_cold_not_below_cold(self, fleet):
        # Regression: a past-TTL entry used to report its raw age, which
        # the priority formula treated as *staler than* COLD_STALENESS —
        # no: the store will refuse to serve it, so it must rank as cold
        # (None), exactly like a key that was never resolved.
        service = HintService(fleet, service_config(ttl_hours=6.0))
        page = fleet[0]
        key = (page.name, "phone")
        service.store.insert(
            HintService.page_url(page),
            StoreEntry(
                page=page.name,
                device_class="phone",
                payload={"urls": [], "exemplars": {}},
                computed_at_hours=1000.0,
                size_bytes=64,
            ),
        )
        assert service._staleness_of(key, 1005.0) == pytest.approx(5.0)
        assert service._staleness_of(key, 1007.0) is None
        assert service._staleness_of((page.name, "tablet"), 1005.0) is None


class TestFleetRun:
    def test_outage_with_replication_keeps_serving(self, fleet):
        start = ServiceConfig(pages=6).start_hour
        rule = shard_outage_rule(
            0, down_at_hours=start + 0.1, up_at_hours=start + 0.3
        )
        degraded = HintService(
            fleet,
            service_config(
                prewarm=True,
                ttl_hours=50.0,
                shard_fault_rules=(rule,),
                track_window=(0.1, 0.3),
            ),
        ).run()
        replicated = HintService(
            fleet,
            service_config(
                prewarm=True,
                ttl_hours=50.0,
                replication=2,
                shard_fault_rules=(rule,),
                track_window=(0.1, 0.3),
            ),
        ).run()
        assert replicated.as_dict()["window"]["served_rate"] == 1.0
        assert replicated.totals["unavailable"] == 0
        if degraded.totals["unavailable"]:
            window = degraded.as_dict()["window"]
            assert window["served_rate"] < 1.0
        events = replicated.as_dict()["placement"]["health_events"]
        assert [e["event"] for e in events if e["shard"] == 0] == [
            "down",
            "up",
        ]

    def test_fleet_run_is_deterministic(self, fleet):
        def run():
            start = ServiceConfig(pages=6).start_hour
            rule = shard_outage_rule(
                1, down_at_hours=start + 0.1, up_at_hours=start + 0.2
            )
            return (
                HintService(
                    fleet,
                    service_config(
                        replication=2,
                        frontend_cache_entries=2,
                        shard_fault_rules=(rule,),
                        fingerprint=True,
                    ),
                )
                .run()
                .as_dict()
            )

        assert run() == run()

    def test_live_reshard_mid_run_matches_control(self, fleet):
        def run(reshard_at):
            return (
                HintService(
                    fleet,
                    service_config(
                        prewarm=True,
                        ttl_hours=50.0,
                        replication=2,
                        fingerprint=True,
                        reshard_add_at_hours=reshard_at,
                        reshard_points_per_tick=16,
                        batch_period_hours=0.05,
                    ),
                )
                .run()
                .as_dict()
            )

        control = run(None)
        resharded = run(0.1)
        assert control["fingerprint"] == resharded["fingerprint"]
        assert resharded["placement"]["pending_points"] == 0
        assert len(resharded["placement"]["shards"]) == 9
        assert resharded["placement"]["migration"]["points_moved"] == 64

    def test_track_window_counts_only_window_lookups(self, fleet):
        report = HintService(
            fleet, service_config(track_window=(0.0, 1e9))
        ).run()
        window = report.as_dict()["window"]
        assert window["lookups"] == report.totals["lookups"]


def test_tenant_of_strips_trailing_digits():
    assert tenant_of("news0") == "news"
    assert tenant_of("news12") == "news"
    assert tenant_of("42") == "42"
    assert tenant_of("sports") == "sports"

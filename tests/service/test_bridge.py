"""Accuracy bridge: served-hint fidelity, scoring, end-to-end loads."""

import pytest

from repro.calibration import DEFAULT_EVAL_HOUR
from repro.core.offline import (
    OfflineResolver,
    StableSet,
    stable_set_to_dict,
)
from repro.service.backend import HintService, ServiceConfig
from repro.service.bridge import BridgeSample, evaluate_sample, evaluate_samples


@pytest.fixture(scope="module")
def sampled_run(corpus):
    config = ServiceConfig(
        pages=6,
        lookups=600,
        rate_per_hour=400.0,  # 1.5 simulated hours: entries go stale
        freshness_hours=0.25,
        ttl_hours=6.0,
        crawl_budget_per_hour=24.0,
        seed=5,
        bridge_sample_every=60,
    )
    return corpus, HintService(corpus, config).run()


def _sample_with(samples, status):
    for sample in samples:
        if sample.status == status:
            return sample
    pytest.skip(f"run produced no {status!r} sample")


class TestPrime:
    def test_primed_resolver_serves_the_stored_set(self, page):
        resolver = OfflineResolver(page)
        original = resolver.stable_set(DEFAULT_EVAL_HOUR, "phone")
        payload = stable_set_to_dict(original)

        from repro.core.offline import stable_set_from_dict

        fresh = OfflineResolver(page)
        fresh.prime(stable_set_from_dict(payload, page))
        served = fresh.stable_set(DEFAULT_EVAL_HOUR, "phone")
        assert served.urls == original.urls

    def test_prime_rejects_foreign_pages(self, corpus):
        resolver = OfflineResolver(corpus[0])
        alien = StableSet(
            page=corpus[1].name, device_class="phone", as_of_hours=1.0
        )
        with pytest.raises(ValueError):
            resolver.prime(alien)


class TestEvaluateSample:
    def test_miss_scores_zero_recall_and_loads_without_hints(
        self, sampled_run
    ):
        pages, report = sampled_run
        sample = _sample_with(report.samples, "miss")
        row = evaluate_sample(pages[sample.page_index], sample)
        assert row["staleness_hours"] is None
        assert row["served"]["returned"] == 0
        assert row["served"]["recall"] == 0.0
        assert row["served"]["precision"] == 1.0
        # A miss degrades to the no-hint fallback: identical loads.
        assert row["plt_served"] == row["plt_no_hints"]
        assert row["plt_oracle"] <= row["plt_no_hints"]

    def test_served_hits_score_against_predictable_set(self, sampled_run):
        pages, report = sampled_run
        sample = _sample_with(report.samples, "stale_hit")
        row = evaluate_sample(pages[sample.page_index], sample)
        assert row["staleness_hours"] > 0.25
        assert row["served"]["returned"] > 0
        assert 0.0 < row["served"]["precision"] <= 1.0
        assert 0.0 < row["served"]["recall"] <= 1.0
        assert row["plt_served"] < row["plt_no_hints"]

    def test_without_loads_is_scores_only(self, sampled_run):
        pages, report = sampled_run
        sample = report.samples[0]
        row = evaluate_sample(
            pages[sample.page_index], sample, with_loads=False
        )
        assert "plt_served" not in row
        assert "served" in row and "oracle" in row


class TestEvaluateSamples:
    def test_aggregate_shape_and_determinism(self, sampled_run):
        pages, report = sampled_run
        first = evaluate_samples(pages, report.samples, max_samples=4)
        second = evaluate_samples(pages, report.samples, max_samples=4)
        assert first == second
        aggregate = first["aggregate"]
        assert aggregate["samples"] == 4
        assert len(first["rows"]) == 4
        assert 0.0 <= aggregate["precision_mean"] <= 1.0
        assert aggregate["plt_no_hints_mean"] > 0

    def test_max_samples_bounds_the_work(self, sampled_run):
        pages, report = sampled_run
        out = evaluate_samples(
            pages, report.samples, max_samples=2, with_loads=False
        )
        assert out["aggregate"]["samples"] == 2

    def test_empty_input(self, corpus):
        out = evaluate_samples(corpus, [])
        assert out["aggregate"]["samples"] == 0
        assert out["rows"] == []


def test_bridge_sample_is_frozen():
    sample = BridgeSample(
        seq=0,
        when_hours=1.0,
        page_index=0,
        page="news0",
        device_class="phone",
        user="user0",
        status="miss",
        computed_at_hours=None,
        payload=None,
    )
    with pytest.raises(AttributeError):
        sample.seq = 1

"""Event-driven browser wakeups vs the scanner-poll engine: bit-for-bit.

``NetworkConfig.event_driven_browser`` replaces the browser engine's
standing 5 ms preload-scanner poll with demand-driven wakeups placed on
the poll's own virtual time grid, collapses link refresh reschedules
through the lazy-tick flush, and coalesces consecutive microtask
deferrals into shared heap events.  Like ``link_fast_forward`` and
``batched_timeline`` before it, the flag may only ever be a
*performance* knob: every discovery, stage transition, and metric must
occur at the same simulated timestamp as under the poll, so
:class:`LoadMetrics` must be bit-identical — the unobservability
contract.

The property-style sweep below draws random (loss, fault-plan, scenario)
triples from a seeded RNG rather than enumerating a fixed grid — each CI
run re-checks the same deterministic sample, but the sample covers
corners (lossy + faulted + pushed) no hand-picked matrix lists.
"""

import random

import pytest

from repro import audit
from repro.baselines.configs import run_config
from repro.net.faults import ResiliencePolicy, hint_fault_plan
from repro.replay.recorder import record_snapshot

#: Scenario axis: the configurations exercising distinct engine paths
#: (client-driven, hint-driven, and push-everything server behaviour).
SCENARIO_CONFIGS = ["http2", "vroom", "push-all-fetch-asap"]
LOSS_RATES = [0.0, 0.01, 0.03]
FAULT_RATES = [0.0, 0.2, 0.4]

#: Deterministic property sample: 8 random triples, seeded (differently
#: from the batched suite, so the two sweeps cover different corners).
_RNG = random.Random(0xE7D12)
TRIPLES = [
    (
        _RNG.choice(LOSS_RATES),
        _RNG.choice(FAULT_RATES),
        _RNG.choice(SCENARIO_CONFIGS),
        _RNG.randrange(4),  # corpus page index
    )
    for _ in range(8)
]


def _run(page, snapshot, store, config, loss, fault_rate, **engine):
    plan = hint_fault_plan(fault_rate, seed=23) if fault_rate else None
    resilience = ResiliencePolicy() if plan else None
    return run_config(
        config,
        page,
        snapshot,
        store,
        loss_rate=loss,
        fault_plan=plan,
        resilience=resilience,
        **engine,
    )


def _scanner_discoveries(metrics):
    """url -> discovery timestamp, for scanner-discovered resources."""
    return {
        url: timeline.discovered_at
        for url, timeline in metrics.timelines.items()
        if timeline.discovered_via == "scanner"
    }


@pytest.mark.parametrize(
    "loss,fault_rate,config,page_index",
    TRIPLES,
    ids=[
        f"loss{loss}-fault{fault}-{config}-p{idx}"
        for loss, fault, config, idx in TRIPLES
    ],
)
def test_random_triples_bit_identical(
    corpus, stamp, loss, fault_rate, config, page_index
):
    """Event-driven == poll engine on a random (loss, faults, scenario)
    triple.

    One materialization is shared by both runs — the comparison is
    about the wakeup driver, never snapshot drift.
    """
    page = corpus[page_index]
    snapshot = page.materialize(stamp)
    store = record_snapshot(snapshot)
    poll = _run(
        page, snapshot, store, config, loss, fault_rate,
        event_driven_browser=False,
    )
    event_driven = _run(
        page, snapshot, store, config, loss, fault_rate,
        event_driven_browser=True,
    )
    assert event_driven == poll, (
        f"{page.name} under {config!r} loss={loss} faults={fault_rate}: "
        f"event-driven browser changed observables "
        f"(plt {poll.plt!r} vs {event_driven.plt!r})"
    )
    # The headline contract, stated explicitly even though the metrics
    # equality above already covers timelines: every scanner discovery
    # lands at the identical virtual-grid timestamp.
    assert _scanner_discoveries(event_driven) == _scanner_discoveries(poll)
    # Every poll tick is accounted for: either a demand-driven wakeup
    # ran the sweep at that grid point, or the tick was elided outright.
    assert (
        event_driven.engine_counters["browser_wakeups"]
        + event_driven.engine_counters["scanner_polls_elided"]
        == poll.engine_counters["browser_wakeups"]
    )


def test_audited_event_driven_corpus_load_identical(corpus, stamp):
    """REPRO_AUDIT=1 on a full corpus scenario: the scanner-wakeup-bound
    invariant (and every other hook) holds under the event-driven
    browser, and arming the audit changes nothing observable."""
    page = corpus[0]
    snapshot = page.materialize(stamp)
    store = record_snapshot(snapshot)
    plain = _run(
        page, snapshot, store, "vroom", 0.01, 0.2,
        event_driven_browser=True,
    )
    audit.enable()
    try:
        audited = _run(
            page, snapshot, store, "vroom", 0.01, 0.2,
            event_driven_browser=True,
        )
    finally:
        audit.disable()
    assert audited == plain


def test_audited_event_driven_vs_poll_identical(corpus, stamp):
    """The full REPRO_AUDIT=1 equivalence: poll vs event-driven compared
    end-to-end *with the audit armed on both sides*, so the invariant
    hooks police the very runs being compared."""
    page = corpus[1]
    snapshot = page.materialize(stamp)
    store = record_snapshot(snapshot)
    audit.enable()
    try:
        poll = _run(
            page, snapshot, store, "push-all-fetch-asap", 0.01, 0.0,
            event_driven_browser=False,
        )
        event_driven = _run(
            page, snapshot, store, "push-all-fetch-asap", 0.01, 0.0,
            event_driven_browser=True,
        )
    finally:
        audit.disable()
    assert event_driven == poll


def test_event_driven_counters_expose_wakeup_activity(
    page, snapshot, store
):
    """The new counters surface on LoadMetrics and stay inert when off."""
    on = run_config(
        "push-all-fetch-asap", page, snapshot, store,
        event_driven_browser=True,
    )
    off = run_config(
        "push-all-fetch-asap", page, snapshot, store,
        event_driven_browser=False,
    )
    # The poll pierced every silent window; the event-driven driver
    # skips nearly all of those grid ticks.
    assert on.engine_counters["scanner_polls_elided"] > 0
    assert off.engine_counters["scanner_polls_elided"] == 0
    assert (
        on.engine_counters["browser_wakeups"]
        < off.engine_counters["browser_wakeups"]
    )
    # Fewer heap events overall — the point of the exercise.
    assert (
        on.engine_counters["events_scheduled"]
        < off.engine_counters["events_scheduled"]
    )
    assert off.engine_counters["link_tick_keeps"] == 0
    assert off.engine_counters["soon_coalesced"] == 0
    assert on == off

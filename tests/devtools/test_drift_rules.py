"""CFG6xx config/contract drift: dataclasses vs docs tables vs CLI flags."""

from pathlib import Path

from repro.devtools.callgraph import cached_project, parse_package
from repro.devtools.driftrules import (
    normalize_default,
    parse_knob_tables,
    scan_config,
)
from repro.devtools.findings import RULES

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
API_DOCS = REPO_ROOT / "docs" / "API.md"

CONTRACT = ("cfgpkg.conf.TunerConfig",)

CONF_SOURCE = (
    "from dataclasses import dataclass\n"
    "from typing import Optional\n"
    "@dataclass\n"
    "class TunerConfig:\n"
    "    name: str\n"
    "    alpha: float = 0.5\n"
    "    beta: int = 100_000\n"
    "    gamma: Optional[float] = None\n"
)

GOOD_DOCS = (
    "<!-- knobs: cfgpkg.conf.TunerConfig -->\n"
    "| knob | default | meaning |\n"
    "| --- | --- | --- |\n"
    "| `name` | `required` | tuner identity |\n"
    "| `alpha` | `0.5` | damping |\n"
    "| `beta` | `100000` | budget |\n"
    "| `gamma` | `None` | optional override |\n"
)


def _modules(tmp_path, conf=CONF_SOURCE, cli=None):
    root = tmp_path / "cfgpkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("")
    (root / "conf.py").write_text(conf)
    if cli is not None:
        (root / "cli.py").write_text(cli)
    return parse_package(root, package="cfgpkg")


def test_matching_docs_are_clean(tmp_path):
    findings = scan_config(_modules(tmp_path), GOOD_DOCS, CONTRACT)
    assert findings == []


def test_semantic_default_comparison(tmp_path):
    """``100_000`` in docs matches ``100000`` in code, and vice versa."""
    docs = GOOD_DOCS.replace("`100000`", "`100_000`")
    assert scan_config(_modules(tmp_path), docs, CONTRACT) == []
    assert normalize_default("100_000") == normalize_default("100000")


def test_missing_table_is_cfg601(tmp_path):
    findings = scan_config(_modules(tmp_path), "# no tables here\n", CONTRACT)
    assert [finding.code for finding in findings] == ["CFG601"]
    assert "TunerConfig" in findings[0].message


def test_undocumented_field_is_cfg601(tmp_path):
    docs = GOOD_DOCS.replace("| `gamma` | `None` | optional override |\n", "")
    findings = scan_config(_modules(tmp_path), docs, CONTRACT)
    assert [finding.code for finding in findings] == ["CFG601"]
    assert "gamma" in findings[0].message


def test_removed_but_documented_field_is_cfg602(tmp_path):
    docs = GOOD_DOCS + "| `delta` | `3` | no longer exists |\n"
    findings = scan_config(_modules(tmp_path), docs, CONTRACT)
    assert [finding.code for finding in findings] == ["CFG602"]
    assert "delta" in findings[0].message


def test_default_drift_is_cfg603(tmp_path):
    docs = GOOD_DOCS.replace("| `alpha` | `0.5` |", "| `alpha` | `0.7` |")
    findings = scan_config(_modules(tmp_path), docs, CONTRACT)
    assert [finding.code for finding in findings] == ["CFG603"]
    assert "alpha" in findings[0].message
    assert "`0.5`" in findings[0].message and "`0.7`" in findings[0].message


def test_required_marker_must_match_defaultlessness(tmp_path):
    docs = GOOD_DOCS.replace("| `name` | `required` |", "| `name` | `'x'` |")
    findings = scan_config(_modules(tmp_path), docs, CONTRACT)
    assert [finding.code for finding in findings] == ["CFG603"]
    assert "required" in findings[0].message


def test_fixture_covers_every_cfg_rule():
    """The scenarios above must exercise the whole CFG family."""
    covered = {"CFG601", "CFG602", "CFG603"}
    assert covered == {code for code in RULES if code.startswith("CFG")}


# -- CLI flag cross-check ----------------------------------------------------


def _cli_source(default: str) -> str:
    return (
        "import argparse\n"
        "def build():\n"
        "    parser = argparse.ArgumentParser()\n"
        f"    parser.add_argument('--alpha', type=float, default={default})\n"
        "    parser.add_argument('--unrelated', default=9)\n"
        "    return parser\n"
    )


def test_cli_flag_matching_dataclass_default_is_clean(tmp_path):
    modules = _modules(tmp_path, cli=_cli_source("0.5"))
    assert scan_config(modules, GOOD_DOCS, CONTRACT) == []


def test_cli_flag_default_none_means_not_given(tmp_path):
    modules = _modules(tmp_path, cli=_cli_source("None"))
    assert scan_config(modules, GOOD_DOCS, CONTRACT) == []


def test_cli_flag_drift_is_cfg603(tmp_path):
    modules = _modules(tmp_path, cli=_cli_source("2.0"))
    findings = scan_config(modules, GOOD_DOCS, CONTRACT)
    assert [finding.code for finding in findings] == ["CFG603"]
    assert "--alpha" in findings[0].message
    assert findings[0].path == "cli.py"


# -- the real repository contract --------------------------------------------


def test_repo_docs_match_repo_dataclasses():
    modules, _ = cached_project(PACKAGE_ROOT, "repro")
    assert scan_config(modules, API_DOCS.read_text()) == []


def test_corrupting_api_docs_raises_cfg603():
    """Flip one default in docs/API.md: the drift pass must catch it."""
    docs = API_DOCS.read_text()
    corrupted = docs.replace("| `ttl_hours` | `12.0` |",
                             "| `ttl_hours` | `9.9` |", 1)
    assert corrupted != docs, "docs/API.md lost its ttl_hours row"
    modules, _ = cached_project(PACKAGE_ROOT, "repro")
    findings = scan_config(modules, corrupted)
    assert [finding.code for finding in findings] == ["CFG603"]
    assert "ttl_hours" in findings[0].message


def test_repo_docs_tables_cover_every_contract_class():
    tables = parse_knob_tables(API_DOCS.read_text())
    from repro.devtools.driftrules import DEFAULT_CONTRACTS
    assert set(DEFAULT_CONTRACTS) <= set(tables)

"""Fig 7: fraction of resources persisting over different time scales.

Paper (Alexa top-100): median ~70% of a page's resources persist over one
hour, dropping to ~50% over one week — the reason offline-only dependency
resolution goes stale.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments import figures
from repro.experiments.report import print_figure


def test_fig07_persistence(benchmark, corpus_size):
    series = run_once(
        benchmark, figures.fig7_persistence, count=max(30, corpus_size)
    )
    print_figure(
        "Fig 7: persistent-resource fraction per page",
        series,
        paper_values={
            "one_hour": 0.70,
            "one_day": 0.60,
            "one_week": 0.50,
        },
    )
    assert (
        median(series["one_hour"])
        >= median(series["one_day"])
        >= median(series["one_week"])
    )
    assert median(series["one_hour"]) > median(series["one_week"])

"""Unit tests for synthetic markup rendering and extraction."""

from repro.pages import markup
from repro.pages.resources import Discovery, Resource, ResourceSpec, ResourceType


def make_resource(name, rtype, discovery=Discovery.STATIC_MARKUP, **kw):
    spec = ResourceSpec(
        name=name,
        rtype=rtype,
        domain="a.com",
        size=kw.pop("size", 1000),
        parent=kw.pop("parent", None),
        discovery=discovery,
        **kw,
    )
    return Resource(
        spec=spec, url=f"a.com/{name}.{rtype.value}", size=spec.size
    )


def doc_with_children(children, size=5000):
    doc = make_resource("doc", ResourceType.HTML, size=size)
    for child in children:
        child.parent = doc
        doc.children.append(child)
    doc.body = markup.render_document(doc, size)
    return doc


class TestRenderDocument:
    def test_body_has_exact_size(self):
        doc = doc_with_children(
            [make_resource("img0", ResourceType.IMAGE, position=0.4)]
        )
        assert len(doc.body) == 5000

    def test_static_children_appear(self):
        img = make_resource("img0", ResourceType.IMAGE, position=0.3)
        css = make_resource("css0", ResourceType.CSS, position=0.1)
        doc = doc_with_children([img, css])
        assert img.url in doc.body
        assert css.url in doc.body

    def test_script_computed_children_hidden(self):
        hidden = make_resource(
            "dyn", ResourceType.IMAGE, discovery=Discovery.SCRIPT_COMPUTED
        )
        doc = doc_with_children([hidden])
        assert hidden.url not in doc.body

    def test_children_ordered_by_position(self):
        early = make_resource("early", ResourceType.IMAGE, position=0.1)
        late = make_resource("late", ResourceType.IMAGE, position=0.9)
        doc = doc_with_children([late, early])
        assert doc.body.index(early.url) < doc.body.index(late.url)

    def test_async_script_gets_async_attribute(self):
        script = make_resource(
            "ajs", ResourceType.JS, position=0.5, exec_async=True
        )
        doc = doc_with_children([script])
        start = doc.body.index(script.url)
        tag = doc.body[max(0, start - 60):start]
        assert "async" in tag


class TestRenderScript:
    def test_computed_child_url_not_literal(self):
        script = make_resource("s", ResourceType.JS, size=2000)
        child = make_resource(
            "kid", ResourceType.IMAGE, discovery=Discovery.SCRIPT_COMPUTED
        )
        child.parent = script
        script.children.append(child)
        body = markup.render_script(script, 2000)
        assert child.url not in body
        # ...but the pieces are there (the script really references it).
        assert child.url[: len(child.url) // 2] in body

    def test_script_body_size(self):
        script = make_resource("s", ResourceType.JS, size=1234)
        assert len(markup.render_script(script, 1234)) == 1234


class TestRenderStylesheet:
    def test_css_children_via_url_refs(self):
        sheet = make_resource("c", ResourceType.CSS, size=900)
        font = make_resource(
            "f", ResourceType.FONT, discovery=Discovery.CSS_REF
        )
        font.parent = sheet
        sheet.children.append(font)
        body = markup.render_stylesheet(sheet, 900)
        assert f"url({font.url})" in body
        assert markup.extract_css_urls(body) == [font.url]


class TestExtraction:
    def test_extract_urls_roundtrip(self):
        children = [
            make_resource("i0", ResourceType.IMAGE, position=0.2),
            make_resource("j0", ResourceType.JS, position=0.4),
            make_resource("c0", ResourceType.CSS, position=0.6),
            make_resource("f0", ResourceType.HTML, position=0.8),
        ]
        doc = doc_with_children(children)
        extracted = markup.extract_urls(doc.body)
        assert extracted == [child.url for child in doc.children]

    def test_offsets_are_monotone_and_cover_tags(self):
        children = [
            make_resource(f"i{i}", ResourceType.IMAGE, position=i / 10)
            for i in range(1, 6)
        ]
        doc = doc_with_children(children)
        pairs = markup.extract_urls_with_offsets(doc.body)
        offsets = [offset for _, offset in pairs]
        assert offsets == sorted(offsets)
        for url, offset in pairs:
            assert url in doc.body[:offset]

    def test_extract_from_empty_body(self):
        assert markup.extract_urls("") == []
        assert markup.extract_css_urls("") == []

    def test_urls_visible_to_scanner_union(self):
        doc_a = doc_with_children(
            [make_resource("a0", ResourceType.IMAGE, position=0.3)]
        )
        img_b = make_resource("b0", ResourceType.IMAGE, position=0.3)
        doc_b = doc_with_children([img_b])
        urls = markup.urls_visible_to_scanner([doc_a.body, doc_b.body])
        assert doc_a.children[0].url in urls
        assert img_b.url in urls


def test_render_body_dispatch():
    doc = make_resource("d", ResourceType.HTML, size=600)
    js = make_resource("j", ResourceType.JS, size=600)
    css = make_resource("c", ResourceType.CSS, size=600)
    img = make_resource("i", ResourceType.IMAGE, size=600)
    assert markup.render_body(doc).startswith("<html>")
    assert "function" in markup.render_body(js)
    assert "body" in markup.render_body(css)
    assert markup.render_body(img) == ""

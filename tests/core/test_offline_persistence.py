"""Tests for stable-set persistence (the server's offline database)."""

import json

import pytest

from repro.core.offline import (
    OfflineResolver,
    stable_set_from_dict,
    stable_set_to_dict,
)


class TestStableSetPersistence:
    def test_round_trip(self, page, stamp):
        resolver = OfflineResolver(page)
        original = resolver.stable_set(stamp.when_hours, "phone")
        data = stable_set_to_dict(original)
        restored = stable_set_from_dict(data, page)
        assert restored.urls == original.urls
        assert set(restored.exemplars) == set(original.exemplars)
        for url in original.exemplars:
            assert (
                restored.exemplars[url].name
                == original.exemplars[url].name
            )
            assert (
                restored.exemplars[url].process_order
                == original.exemplars[url].process_order
            )

    def test_json_serialisable(self, page, stamp):
        resolver = OfflineResolver(page)
        stable = resolver.stable_set(stamp.when_hours, "phone")
        text = json.dumps(stable_set_to_dict(stable))
        assert json.loads(text)["page"] == page.name

    def test_unknown_exemplar_rejected(self, page, stamp):
        resolver = OfflineResolver(page)
        stable = resolver.stable_set(stamp.when_hours, "phone")
        data = stable_set_to_dict(stable)
        any_url = next(iter(data["exemplars"]))
        data["exemplars"][any_url]["name"] = "ghost_resource"
        with pytest.raises(ValueError, match="unknown to page"):
            stable_set_from_dict(data, page)

    def test_restored_set_drives_resolver(self, page, snapshot, stamp):
        """A resolver fed a persisted stable set produces usable hints."""
        from repro.core.resolver import VroomResolver

        resolver = VroomResolver(page)
        direct = resolver.hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        data = stable_set_to_dict(
            resolver.offline.stable_set(stamp.when_hours, "phone")
        )
        restored = stable_set_from_dict(data, page)
        # Patch the cache so the resolver reuses the persisted set.
        key = (round(stamp.when_hours, 6), "phone")
        fresh = VroomResolver(page)
        fresh.offline._cache[key] = restored
        rehydrated = fresh.hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        assert set(rehydrated.urls()) == set(direct.urls())

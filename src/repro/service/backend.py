"""The hint service itself: store + scheduler + workload on the DES.

:class:`HintService` simulates a multi-tenant Vroom hint-serving
backend for a fleet of pages.  One :class:`~repro.net.simulator.
Simulator` instance provides the virtual clock — its time unit here is
**hours** (the offline-resolution timescale), not the seconds a page
load uses; the two simulations never share a clock instance.

The operational loop per lookup:

1. Route the page URL through the consistent-hash ring to a shard.
2. ``HIT`` — serve the stored stable set.  ``STALE_HIT`` — serve it
   *and* enqueue a refresh (stale hints still beat no hints; the
   bridge quantifies the gap).  ``MISS``/``EXPIRED`` — serve **no
   hints** (the client falls back to vanilla HTTP/2 discovery, Vroom's
   graceful cold-start story) and enqueue a resolution job.
3. Record a deterministic lookup latency into the shard's histogram.

Every ``batch_period_hours`` the scheduler tick takes a batch within
the crawl budget and runs real offline resolutions
(:class:`~repro.core.offline.OfflineResolver`) at the tick's simulated
hour, inserting fresh entries into the store.  Entries therefore age
exactly as ``pages.dynamics`` rotates URLs underneath them, which is
what makes staleness *mean* something downstream.

A run is a pure function of its :class:`ServiceConfig`: repeated runs
produce bit-identical :class:`ServiceReport` dictionaries.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.calibration import DEFAULT_EVAL_HOUR, OFFLINE_WINDOW_LOADS
from repro.core.offline import OfflineResolver, stable_set_to_dict
from repro.net.faults import FaultPlan, FaultRule
from repro.net.simulator import Simulator
from repro.pages.page import PageBlueprint
from repro.service.bridge import BridgeSample
from repro.service.placement import FleetLookup, FleetStore
from repro.service.scheduler import BatchScheduler, ResolutionJob
from repro.service.store import (
    LatencyHistogram,
    LookupStatus,
    StoreConfig,
    StoreEntry,
    payload_size_bytes,
    stable_hash,
)
from repro.service.workload import Workload, WorkloadConfig


def _fault_rule_dict(rule: FaultRule) -> dict:
    """JSON-clean form of a fault rule (``inf`` becomes ``None``)."""
    return {
        "kind": rule.kind.value,
        "rate": rule.rate,
        "url_substring": rule.url_substring,
        "domain": rule.domain,
        "not_before": rule.not_before,
        "not_after": (
            None if rule.not_after == float("inf") else rule.not_after
        ),
    }


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a service run depends on (the seed included)."""

    # -- fleet ----------------------------------------------------------
    pages: int = 50
    # -- traffic --------------------------------------------------------
    lookups: int = 100_000
    rate_per_hour: float = 20_000.0
    zipf_exponent: float = 1.1
    phone_fraction: float = 0.85
    user_pool: int = 32
    # -- store ----------------------------------------------------------
    shards: int = 8
    vnodes: int = 64
    shard_memory_bytes: int = 256 * 1024
    ttl_hours: float = 12.0
    freshness_hours: float = 2.0
    # -- fleet placement -------------------------------------------------
    #: Copies per entry: writes fan out to this many distinct shards,
    #: reads fail over along the same preference list.
    replication: int = 1
    #: Hot-key mitigation: entries in the per-frontend cache (0 = off).
    frontend_cache_entries: int = 0
    frontend_cache_ttl_hours: float = 0.05
    #: Shard outage windows, expressed as :class:`repro.net.faults`
    #: rules matched against the synthetic shard URLs (see
    #: :func:`repro.service.placement.shard_outage_rule`).  Times are
    #: absolute simulated hours (``start_hour``-based).
    shard_fault_rules: Tuple[FaultRule, ...] = ()
    fault_seed: int = 0
    #: Live resharding: add one shard this many hours into the run
    #: (None = never) and migrate this many ring segments per batch tick.
    reshard_add_at_hours: Optional[float] = None
    reshard_points_per_tick: int = 8
    # -- flash crowd -----------------------------------------------------
    flash_at_hours: Optional[float] = None
    flash_duration_hours: float = 0.1
    flash_multiplier: float = 10.0
    flash_focus: float = 0.8
    flash_page_rank: int = 0
    # -- extra instrumentation -------------------------------------------
    #: Run-relative (start, end) hours whose lookups are tallied
    #: separately — how did serving hold up *during* the incident?
    track_window: Optional[Tuple[float, float]] = None
    #: Chain a sha1 over every served (seq, status, payload URLs); the
    #: reshard experiment compares runs by this digest.
    fingerprint: bool = False
    # -- offline-resolution scheduler -----------------------------------
    batch_period_hours: float = 0.25
    crawl_budget_per_hour: float = 60.0
    #: Resolve every (page, device-class) key once at ``start_hour``
    #: before traffic begins (steady-state fleet rather than cold
    #: start).  The staleness sweep needs this: without it, starvation
    #: budgets turn would-be stale hits into misses and the
    #: budget→staleness relationship is confounded by coverage.
    prewarm: bool = False
    # -- time & determinism ---------------------------------------------
    start_hour: float = DEFAULT_EVAL_HOUR
    seed: int = 0
    # -- accuracy bridge -------------------------------------------------
    #: Sample every Nth lookup for end-to-end evaluation (0 disables).
    bridge_sample_every: int = 0

    def workload(self) -> WorkloadConfig:
        return WorkloadConfig(
            pages=self.pages,
            lookups=self.lookups,
            rate_per_hour=self.rate_per_hour,
            zipf_exponent=self.zipf_exponent,
            phone_fraction=self.phone_fraction,
            user_pool=self.user_pool,
            seed=self.seed,
            flash_at_hours=self.flash_at_hours,
            flash_duration_hours=self.flash_duration_hours,
            flash_multiplier=self.flash_multiplier,
            flash_focus=self.flash_focus,
            flash_page_rank=self.flash_page_rank,
        )

    def store(self) -> StoreConfig:
        return StoreConfig(
            shard_count=self.shards,
            vnodes=self.vnodes,
            shard_memory_bytes=self.shard_memory_bytes,
            ttl_hours=self.ttl_hours,
            freshness_hours=self.freshness_hours,
            replication=self.replication,
            frontend_cache_entries=self.frontend_cache_entries,
            frontend_cache_ttl_hours=self.frontend_cache_ttl_hours,
        )

    def fault_plan(self) -> Optional[FaultPlan]:
        if not self.shard_fault_rules:
            return None
        return FaultPlan(seed=self.fault_seed, rules=self.shard_fault_rules)

    def as_dict(self) -> dict:
        return {
            "pages": self.pages,
            "lookups": self.lookups,
            "rate_per_hour": self.rate_per_hour,
            "zipf_exponent": self.zipf_exponent,
            "phone_fraction": self.phone_fraction,
            "user_pool": self.user_pool,
            "shards": self.shards,
            "vnodes": self.vnodes,
            "shard_memory_bytes": self.shard_memory_bytes,
            "ttl_hours": self.ttl_hours,
            "freshness_hours": self.freshness_hours,
            "batch_period_hours": self.batch_period_hours,
            "crawl_budget_per_hour": self.crawl_budget_per_hour,
            "prewarm": self.prewarm,
            "start_hour": self.start_hour,
            "seed": self.seed,
            "bridge_sample_every": self.bridge_sample_every,
            "replication": self.replication,
            "frontend_cache_entries": self.frontend_cache_entries,
            "frontend_cache_ttl_hours": self.frontend_cache_ttl_hours,
            "shard_fault_rules": [
                _fault_rule_dict(rule) for rule in self.shard_fault_rules
            ],
            "fault_seed": self.fault_seed,
            "reshard_add_at_hours": self.reshard_add_at_hours,
            "reshard_points_per_tick": self.reshard_points_per_tick,
            "flash_at_hours": self.flash_at_hours,
            "flash_duration_hours": self.flash_duration_hours,
            "flash_multiplier": self.flash_multiplier,
            "flash_focus": self.flash_focus,
            "flash_page_rank": self.flash_page_rank,
            "track_window": (
                list(self.track_window) if self.track_window else None
            ),
            "fingerprint": self.fingerprint,
        }


def tenant_of(page_name: str) -> str:
    """Tenant (site operator) a page belongs to: its name sans index."""
    return page_name.rstrip("0123456789") or page_name


@dataclass
class ServiceReport:
    """Counters and distributions from one service run."""

    config: dict
    duration_hours: float
    totals: dict
    latency: dict
    shards: List[dict]
    tenants: Dict[str, dict]
    scheduler: dict
    #: Hit rate per tenth of the lookup stream — the warm-up curve.
    warmup_hit_rate: List[float]
    #: Placement-map state: version, replication, health events,
    #: migration counters.
    placement: dict = field(default_factory=dict)
    #: Per-frontend hot-key cache counters (None when disabled).
    frontend: Optional[dict] = None
    #: Serving stats inside ``config.track_window`` (None when unset).
    window: Optional[dict] = None
    #: sha1 chain over the served hint stream (None when disabled).
    fingerprint: Optional[str] = None
    samples: List[BridgeSample] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.totals["hit_rate"]

    @property
    def stale_hit_rate(self) -> float:
        return self.totals["stale_hit_rate"]

    def as_dict(self) -> dict:
        """JSON-ready form; deterministic modulo nothing (no wall clock)."""
        out = {
            "config": self.config,
            "duration_hours": round(self.duration_hours, 6),
            "totals": self.totals,
            "latency": self.latency,
            "shards": self.shards,
            "tenants": {
                tenant: self.tenants[tenant]
                for tenant in sorted(self.tenants)
            },
            "scheduler": self.scheduler,
            "warmup_hit_rate": self.warmup_hit_rate,
            "placement": self.placement,
        }
        if self.frontend is not None:
            out["frontend"] = self.frontend
        if self.window is not None:
            out["window"] = self.window
        if self.fingerprint is not None:
            out["fingerprint"] = self.fingerprint
        return out


class HintService:
    """One simulated hint-serving backend over a fixed page fleet."""

    def __init__(self, pages: List[PageBlueprint], config: ServiceConfig):
        if not pages:
            raise ValueError("the service needs a non-empty page fleet")
        if len(pages) != config.pages:
            raise ValueError(
                f"config says {config.pages} pages, fleet has {len(pages)}"
            )
        self.pages = pages
        self.config = config
        self.store = FleetStore(
            config.store(), fault_plan=config.fault_plan()
        )
        self.scheduler = BatchScheduler(
            budget_loads_per_hour=config.crawl_budget_per_hour,
            batch_period_hours=config.batch_period_hours,
            loads_per_job=OFFLINE_WINDOW_LOADS,
        )
        self._page_by_name = {page.name: page for page in pages}
        self._resolvers: Dict[str, OfflineResolver] = {}
        self._samples: List[BridgeSample] = []
        self._tenants: Dict[str, dict] = {}
        #: page index -> tenant key, precomputed: ``tenant_of`` strips
        #: digits per call, and the lookup handler runs per arrival.
        #: Tenant rows stay lazily created so the report still lists
        #: only tenants that actually saw traffic.
        self._tenant_keys = [tenant_of(page.name) for page in pages]
        self._ran = False
        #: Per-decile (hits+stale_hits, lookups) for the warm-up curve.
        self._decile_served = [0] * 10
        self._decile_lookups = [0] * 10
        #: Latency samples with no shard behind them: frontend-cache
        #: hits and fully unavailable keys.
        self._front_latency = LatencyHistogram()
        self._window_lookups = 0
        self._window_served = 0
        self._fingerprint = hashlib.sha1() if config.fingerprint else None
        self._reshard_started = False

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def page_url(page: PageBlueprint) -> str:
        """The routing key: the page's canonical URL."""
        return f"{page.name}.com/"

    def _resolver(self, page_name: str) -> OfflineResolver:
        resolver = self._resolvers.get(page_name)
        if resolver is None:
            resolver = OfflineResolver(self._page_by_name[page_name])
            self._resolvers[page_name] = resolver
        return resolver

    #: Per-attempt deadline a front end spends on a fully-down key (ms).
    UNAVAILABLE_TIMEOUT_MS = 5.0

    def _lookup_latency_ms(self, result: FleetLookup, seq: int) -> float:
        """Deterministic per-lookup service latency (milliseconds).

        Base dispatch cost, a logarithmic occupancy term (index walk),
        a heavy-tailed deterministic jitter drawn from a sha1 of the
        sequence number — giving a realistic p50≪p99 spread that is
        bit-identical across runs — plus one extra hop per replica
        probed past the first.  Frontend-cache hits skip the shard walk
        entirely; a fully unavailable key burns the probe timeout.
        """
        draw = (stable_hash(f"lat{seq}") % 10_000) / 10_000.0
        if result.unavailable:
            return self.UNAVAILABLE_TIMEOUT_MS
        if result.frontend:
            return 0.02 + 0.005 * draw
        base = 0.15
        occupancy = 0.02 * math.log2(1.0 + len(result.shard))
        jitter = 0.05 * draw + 4.0 * draw ** 12
        extra_hops = 0.12 * (result.probes - 1)
        return base + occupancy + jitter + extra_hops

    # -- event handlers ---------------------------------------------------

    # repro: hotpath
    def _handle_lookup(
        self, lookup, now_hours: float
    ) -> Tuple[FleetLookup, float]:
        page = self.pages[lookup.page_index]
        self.store.sync_health(now_hours)
        result = self.store.lookup(
            self.page_url(page), page.name, lookup.device_class, now_hours
        )
        entry, status = result.entry, result.status
        latency_ms = self._lookup_latency_ms(result, lookup.seq)
        if result.shard is not None:
            result.shard.latency.record(latency_ms)
        else:
            self._front_latency.record(latency_ms)

        served = status in (LookupStatus.HIT, LookupStatus.STALE_HIT)
        if self._fingerprint is not None:
            urls = (
                ",".join(sorted(entry.payload.get("urls", [])))
                if entry is not None
                else ""
            )
            self._fingerprint.update(
                f"{lookup.seq}|{status.value if served else 'cold'}|{urls}\n"
                .encode()
            )
        if self.config.track_window is not None:
            begin, end = self.config.track_window
            relative = now_hours - self.config.start_hour
            if begin <= relative < end:
                self._window_lookups += 1
                self._window_served += 1 if served else 0

        tenant_key = self._tenant_keys[lookup.page_index]
        tenant = self._tenants.get(tenant_key)
        if tenant is None:
            # First traffic for this tenant: build its row once, instead
            # of allocating a throwaway default dict on every lookup.
            # repro: allow[PERF401] runs once per tenant, behind the
            # None guard — not per lookup.
            tenant = self._tenants[tenant_key] = {
                "lookups": 0, "hits": 0, "stale_hits": 0, "misses": 0,
            }
        tenant["lookups"] += 1
        decile = min(9, lookup.seq * 10 // self.config.lookups)
        self._decile_lookups[decile] += 1

        if status is LookupStatus.HIT:
            tenant["hits"] += 1
            self._decile_served[decile] += 1
        elif status is LookupStatus.STALE_HIT:
            tenant["stale_hits"] += 1
            self._decile_served[decile] += 1
            self.scheduler.enqueue(
                ResolutionJob(
                    page=page.name,
                    device_class=lookup.device_class,
                    page_index=lookup.page_index,
                    enqueued_at_hours=now_hours,
                    reason="stale",
                )
            )
        else:  # MISS or EXPIRED: cold start — serve no hints, resolve.
            tenant["misses"] += 1
            self.scheduler.enqueue(
                ResolutionJob(
                    page=page.name,
                    device_class=lookup.device_class,
                    page_index=lookup.page_index,
                    enqueued_at_hours=now_hours,
                    reason=(
                        "expired"
                        if status is LookupStatus.EXPIRED
                        else "miss"
                    ),
                )
            )

        every = self.config.bridge_sample_every
        if every > 0 and lookup.seq % every == 0:
            self._samples.append(
                BridgeSample(
                    seq=lookup.seq,
                    when_hours=now_hours,
                    page_index=lookup.page_index,
                    page=page.name,
                    device_class=lookup.device_class,
                    user=lookup.user,
                    status=status.value,
                    computed_at_hours=(
                        entry.computed_at_hours if entry is not None else None
                    ),
                    payload=(entry.payload if entry is not None else None),
                )
            )
        return result, latency_ms

    def _staleness_of(
        self, key: Tuple[str, str], now_hours: float
    ) -> Optional[float]:
        page_name, device_class = key
        page = self._page_by_name[page_name]
        entry = self.store.peek(self.page_url(page), key)
        if entry is None:
            return None
        age = entry.age_hours(now_hours)
        if age > self.config.ttl_hours:
            # The store will refuse to serve it: an expired-but-not-yet-
            # dropped entry must rank as cold, not *below* cold misses.
            return None
        return age

    def _install_entry(
        self, page_name: str, device_class: str, now_hours: float
    ) -> None:
        """Resolve one key at ``now_hours`` and insert it into the store."""
        resolver = self._resolver(page_name)
        stable = resolver.stable_set(round(now_hours, 6), device_class)
        payload = stable_set_to_dict(stable)
        entry = StoreEntry(
            page=page_name,
            device_class=device_class,
            payload=payload,
            computed_at_hours=round(now_hours, 6),
            size_bytes=payload_size_bytes(payload),
        )
        self.store.insert(self.page_url(self._page_by_name[page_name]), entry)

    def _prewarm(self) -> None:
        """Populate every (page, device-class) key at the start hour."""
        for page in self.pages:
            for device_class in ("phone", "tablet"):
                self._install_entry(
                    page.name, device_class, self.config.start_hour
                )

    def _run_batch(self, now_hours: float) -> None:
        self.store.sync_health(now_hours)
        self._drive_reshard(now_hours)
        batch = self.scheduler.take_batch(
            now_hours, lambda key: self._staleness_of(key, now_hours)
        )
        for job in batch:
            self._install_entry(job.page, job.device_class, now_hours)

    def _drive_reshard(self, now_hours: float) -> None:
        """Advance the configured live reshard, a few segments per tick."""
        reshard_at = self.config.reshard_add_at_hours
        if reshard_at is None:
            return
        if now_hours - self.config.start_hour < reshard_at:
            return
        if not self._reshard_started:
            self.store.begin_add_shard()
            self._reshard_started = True
        if self.store.reshard_pending():
            self.store.reshard_step(self.config.reshard_points_per_tick)

    # -- external driving (the longrun streaming harness) -----------------

    def begin(self) -> None:
        """Arm the service for externally driven traffic.

        Syncs shard health at the start hour and prewarms if configured
        — exactly what :meth:`run` does before its event loop.  Claims
        the per-run counters, so a service is driven either by
        :meth:`run` or externally, never both.
        """
        if self._ran:
            raise RuntimeError(
                "a HintService holds per-run counters; build a fresh one "
                "per run"
            )
        self._ran = True
        self.store.sync_health(self.config.start_hour)
        if self.config.prewarm:
            self._prewarm()

    def process_lookup(
        self, lookup, now_hours: float
    ) -> Tuple[FleetLookup, float]:
        """Serve one lookup at an absolute simulated hour.

        Returns the front-door :class:`FleetLookup` outcome and the
        recorded latency in milliseconds.  Callers own the clock: hours
        must be fed monotonically, interleaved with
        :meth:`process_batch` ticks.
        """
        return self._handle_lookup(lookup, now_hours)

    def process_batch(self, now_hours: float) -> None:
        """Run one scheduler tick (health sync, reshard step, batch)."""
        self._run_batch(now_hours)

    def trim_resolver_caches(self) -> int:
        """Drop memoised stable sets; returns the entries dropped.

        Each tick resolves at a fresh simulated hour, so over a long
        horizon the per-page memo tables only ever grow and never hit.
        The streaming runner calls this after every tick to keep memory
        constant in the horizon.
        """
        dropped = 0
        for resolver in self._resolvers.values():
            dropped += resolver.trim_cache()
        return dropped

    def final_report(self, duration_hours: float) -> ServiceReport:
        """The run report for an externally driven service."""
        return self._report(duration_hours)

    # -- the run ----------------------------------------------------------

    def run(self) -> ServiceReport:
        """Drive the whole workload through the DES; return the report."""
        if self._ran:
            raise RuntimeError(
                "a HintService holds per-run counters; build a fresh one "
                "per run"
            )
        self._ran = True
        self.store.sync_health(self.config.start_hour)
        if self.config.prewarm:
            self._prewarm()
        sim = Simulator()
        workload = Workload(self.config.workload())
        arrivals = iter(workload)

        def pump() -> None:
            """Self-rescheduling arrival chain: one live event at a time."""
            lookup = next(arrivals, None)
            if lookup is None:
                return
            delay = max(0.0, lookup.when_hours - sim.now)

            def fire(lookup=lookup) -> None:
                self._handle_lookup(
                    lookup, self.config.start_hour + sim.now
                )
                pump()

            sim.schedule_drop(delay, fire)

        duration = workload.duration_hours()
        ticks = int(math.ceil(duration / self.config.batch_period_hours)) + 1
        for tick in range(1, ticks + 1):
            when = tick * self.config.batch_period_hours

            def fire_batch(when=when) -> None:
                self._run_batch(self.config.start_hour + when)

            sim.schedule_at(when, fire_batch)

        pump()
        sim.run(max_events=self.config.lookups * 2 + ticks + 16)
        return self._report(duration)

    def _report(self, duration: float) -> ServiceReport:
        totals = self.store.totals()
        lookups = totals["lookups"]
        served = totals["hits"] + totals["stale_hits"]
        totals["hit_rate"] = round(served / lookups, 6) if lookups else 0.0
        totals["fresh_hit_rate"] = (
            round(totals["hits"] / lookups, 6) if lookups else 0.0
        )
        totals["stale_hit_rate"] = (
            round(totals["stale_hits"] / lookups, 6) if lookups else 0.0
        )
        totals["miss_rate"] = (
            round((totals["misses"] + totals["expired"]) / lookups, 6)
            if lookups
            else 0.0
        )

        shard_rows = []
        for shard in self.store.shard_list():
            row = {"shard": shard.index, "entries": len(shard)}
            row["retired"] = shard.index not in self.store.shards
            row["down"] = shard.index in self.store.down
            row.update(shard.counters.as_dict())
            row.update(shard.latency.summary())
            shard_rows.append(row)
        merged = LatencyHistogram.merged(
            [shard.latency for shard in self.store.shard_list()]
            + [self._front_latency]
        )

        warmup = []
        for served_d, lookups_d in zip(
            self._decile_served, self._decile_lookups
        ):
            warmup.append(
                round(served_d / lookups_d, 6) if lookups_d else 0.0
            )

        window = None
        if self.config.track_window is not None:
            window = {
                "begin_hours": self.config.track_window[0],
                "end_hours": self.config.track_window[1],
                "lookups": self._window_lookups,
                "served": self._window_served,
                "served_rate": (
                    round(self._window_served / self._window_lookups, 6)
                    if self._window_lookups
                    else 0.0
                ),
            }

        return ServiceReport(
            config=self.config.as_dict(),
            duration_hours=duration,
            totals=totals,
            latency=merged.summary(),
            shards=shard_rows,
            tenants=self._tenants,
            scheduler=self.scheduler.counters.as_dict(),
            warmup_hit_rate=warmup,
            placement=self.store.placement_summary(),
            frontend=(
                self.store.frontend.as_dict()
                if self.store.frontend is not None
                else None
            ),
            window=window,
            fingerprint=(
                self._fingerprint.hexdigest()
                if self._fingerprint is not None
                else None
            ),
            samples=list(self._samples),
        )

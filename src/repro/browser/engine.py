"""The page-load engine: one simulated browser loading one page snapshot.

The engine wires together the network stack, the serial CPU, the incremental
document parsers and a pluggable *fetch policy* (the stock browser fetches
on discovery; Vroom's staged scheduler and Polaris's prioritizer are
policies supplied by other packages).  Its output is a
:class:`~repro.browser.metrics.LoadMetrics` with per-resource timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro import audit
from repro.browser.cache import BrowserCache
from repro.browser.cookies import CookieJar
from repro.browser.cpu import CpuProfile, CpuQueue, DEVICE_PROFILES
from repro.browser.metrics import (
    LoadMetrics,
    ResourceTimeline,
    reconstruct_critical_path,
    speed_index,
)
from repro.browser.parser import DocumentParse
from repro.net.http import Fetch, HttpClient, NetworkConfig, PushedResponse
from repro.net.origin import OriginServer
from repro.net.simulator import ArraySimulator, Simulator, SimulatorLike
from repro.pages.page import PageSnapshot
from repro.pages.resources import PROCESSABLE_TYPES, Resource, ResourceType

#: The preload scanner's poll interval in seconds.  The event-driven
#: engine reproduces this exact time grid — iterated addition from
#: zero, matching the legacy loop's repeated ``schedule_drop``
#: arithmetic float for float — so demand-driven armings land at
#: bit-identical timestamps to the poll's.
SCANNER_POLL_INTERVAL = 0.005

#: Network priority by role; lower sorts earlier on HTTP/1.1 queues and
#: weighs heavier in HTTP/2 weighted scheduling.
NET_PRIORITY = {
    "root": 0.5,
    "css": 1.0,
    "sync_js": 1.0,
    "async_js": 2.0,
    "iframe": 3.0,
    "media": 4.0,
    "unreferenced": 5.0,
}


def network_priority(resource: Optional[Resource]) -> float:
    if resource is None:
        return NET_PRIORITY["unreferenced"]
    if resource.parent is None:
        return NET_PRIORITY["root"]
    if resource.rtype is ResourceType.CSS:
        return NET_PRIORITY["css"]
    if resource.rtype is ResourceType.JS:
        return (
            NET_PRIORITY["async_js"]
            if resource.spec.exec_async
            else NET_PRIORITY["sync_js"]
        )
    if resource.is_document:
        return NET_PRIORITY["iframe"]
    return NET_PRIORITY["media"]


class FetchPolicy:
    """Default policy: fetch every resource the moment it is discovered."""

    def attach(self, engine: "PageLoadEngine") -> None:
        self.engine = engine

    def on_discovered(self, url: str, via: str) -> None:
        resource = self.engine.snapshot_urls.get(url)
        self.engine.start_fetch(url, priority=network_priority(resource))

    def on_headers(self, fetch: Fetch) -> None:
        """Hook for hint-aware policies; default ignores hints."""

    def on_fetched(self, url: str) -> None:
        """Hook for staged policies; default needs no bookkeeping."""

    def on_fetch_failed(self, url: str) -> None:
        """Hook for resilience-aware policies: ``url``'s fetch died after
        exhausting its retries.  Default needs no bookkeeping."""

    def ensure_fetch(self, url: str) -> None:
        """The parser needs ``url`` right now; make sure it is in flight."""
        resource = self.engine.snapshot_urls.get(url)
        self.engine.start_fetch(url, priority=network_priority(resource))


@dataclass
class BrowserConfig:
    """Client-side knobs for one load."""

    device: str = "nexus6"
    user: str = "user0"
    when_hours: float = 0.0
    cache: Optional[BrowserCache] = None
    #: Multiplier on all CPU costs (0 disables the CPU for the
    #: network-bound lower bound).
    cpu_scale: float = 1.0
    #: Discover every referenced URL at t=0 (network-bound lower bound).
    preknown_urls: bool = False
    #: Latency of a cache hit (disk/service-worker round trip).
    cache_hit_latency: float = 0.002
    #: Polaris-style fine-grained dependency tracking: safe scripts no
    #: longer block the HTML parser and execute on arrival instead.
    nonblocking_scripts: bool = False
    #: If positive, sample (time, cpu_busy, active_streams) at this
    #: interval; the trace lands in ``LoadMetrics.utilization_trace``.
    sample_interval: float = 0.0

    def cpu_profile(self) -> CpuProfile:
        return DEVICE_PROFILES[self.device]


#: Discovery channels that constitute an actual reference by the page.
#: Hint- and push-driven knowledge prefetches bytes but must not evaluate
#: them (Link preload semantics, Sec 3.2): evaluation waits until the page
#: references the resource through one of these channels.
LOCAL_VIAS = frozenset(
    {"navigation", "scanner", "parser", "script", "css", "preknown", "fetch"}
)


@dataclass
class _ResourceState:
    timeline: ResourceTimeline
    resource: Optional[Resource]
    fetch_requested: bool = False
    fetched: bool = False
    processed: bool = False
    decoded: bool = False
    #: Terminal fetch failure while locally needed: waiters were resumed
    #: without the bytes and the resource's obligations are written off.
    failed: bool = False
    #: A speculative hint prefetch died; the next local reference may
    #: re-request the URL through the vanilla discovery path.
    refetch_armed: bool = False
    locally_referenced: bool = False
    _css_queued: bool = False
    _decode_queued: bool = False
    fetch_obj: Optional[Fetch] = None
    fetch_waiters: List[Callable[[], None]] = field(default_factory=list)
    process_waiters: List[Callable[[], None]] = field(default_factory=list)


class PageLoadEngine:
    """Simulates one load of a page snapshot and reports metrics."""

    def __init__(
        self,
        snapshot: PageSnapshot,
        servers: Dict[str, OriginServer],
        net_config: Optional[NetworkConfig] = None,
        browser_config: Optional[BrowserConfig] = None,
        policy: Optional[FetchPolicy] = None,
    ):
        self.snapshot = snapshot
        self.snapshot_urls = snapshot.by_url()
        self.net_config = net_config or NetworkConfig()
        # Both executors share one contract and produce bit-identical
        # event traces; batched_timeline only changes how much each event
        # costs in wall time (see net/simulator.py).
        self.sim: SimulatorLike = (
            ArraySimulator()
            if self.net_config.batched_timeline
            else Simulator()
        )
        # Microtask batching rides the event-driven flag: consecutive
        # call_soon deferrals collapse into one heap event (order proven
        # identical by the seq-gap guard in call_soon itself).
        self.sim.microtask_batching = self.net_config.event_driven_browser
        self.browser_config = browser_config or BrowserConfig()
        self.cpu_profile = self.browser_config.cpu_profile()
        self.cpu = CpuQueue(self.sim)
        self.client = HttpClient(self.sim, servers, self.net_config)
        self.client.on_push = self._push_arrived
        if self.browser_config.cache is not None:
            self.cache = self.browser_config.cache
        else:
            self.cache = BrowserCache()
        self.client.is_cached = lambda url: self.cache.has_fresh(
            url, self.browser_config.when_hours
        )
        self.cookies = CookieJar(self.browser_config.user)
        self.policy = policy or FetchPolicy()
        self.policy.attach(self)

        self._states: Dict[str, _ResourceState] = {}
        self._doc_parses: Dict[str, DocumentParse] = {}
        self._root_parse_done = False
        self._root_parse_done_at: Optional[float] = None
        self._layout_done_at: Optional[float] = None
        self._iframe_parses_started = False
        self.onload_at: Optional[float] = None
        self._render_events: List = []
        self._finished = False
        #: True once any resource has terminally failed; gates the
        #: orphan walk so fault-free loads pay nothing for it.
        self._any_failed = False
        #: URL whose obligation blocked the previous :meth:`_check_done`
        #: scan.  Checking it first turns the (very common) still-blocked
        #: case into O(1); the full scan is a universally-quantified
        #: check, so scan order never changes the outcome.
        self._done_blocker: Optional[str] = None
        self.wasted_bytes = 0.0

        #: Scanner-wakeup bookkeeping, shared by the poll loop and the
        #: event-driven path (see :meth:`_arm_scanners_event_driven`).
        self._event_driven = self.net_config.event_driven_browser
        self._scanner_waiting: List[Resource] = []
        self._scanner_waiting_urls: Set[str] = set()
        #: First 5 ms grid tick not yet accounted as fired or elided.
        self._scanner_next_tick = SCANNER_POLL_INTERVAL
        #: Absolute time of the pending coalesced wakeup event, if any.
        self._scanner_arm_at: Optional[float] = None
        #: Earliest not-yet-served condition-true transition (audit bound).
        self._scanner_requested_at: Optional[float] = None
        #: Deterministic wakeup counters (surfaced in engine_counters).
        self._browser_wakeups = 0
        self._scanner_polls_elided = 0

    # -- CPU helpers -------------------------------------------------------

    def _cpu_time(self, seconds: float) -> float:
        return seconds * self.browser_config.cpu_scale

    def _submit_cpu(
        self,
        seconds: float,
        on_done: Callable[[], None],
        *,
        low_priority: bool = False,
        band: Optional[int] = None,
    ) -> None:
        self.cpu.submit(
            self._cpu_time(seconds),
            on_done,
            low_priority=low_priority,
            band=band,
        )

    # -- state bookkeeping ---------------------------------------------------

    def state_of(self, url: str) -> _ResourceState:
        state = self._states.get(url)
        if state is None:
            resource = self.snapshot_urls.get(url)
            timeline = ResourceTimeline(
                url=url,
                resource=resource,
                size=resource.size if resource else 0,
                priority=resource.priority if resource else None,
                referenced=resource is not None,
            )
            state = _ResourceState(timeline=timeline, resource=resource)
            self._states[url] = state
        return state

    def timelines(self) -> Dict[str, ResourceTimeline]:
        return {url: state.timeline for url, state in self._states.items()}

    # -- discovery ------------------------------------------------------------

    def discover(self, url: str, via: str, from_url: Optional[str] = None) -> None:
        """Record that the client now knows it needs ``url``.

        The first discovery sets the timeline; a later *local* reference to
        a resource first known through hints/push unlocks its evaluation.
        """
        state = self.state_of(url)
        fresh = state.timeline.discovered_at is None
        if fresh:
            state.timeline.discovered_at = self.sim.now
            state.timeline.discovered_via = via
            state.timeline.discovered_from = from_url
        if via in LOCAL_VIAS and not state.locally_referenced:
            state.locally_referenced = True
            if state.refetch_armed and not state.fetch_requested:
                # An earlier hint prefetch failed terminally; the page now
                # actually references the URL, so fall back to the vanilla
                # fetch-on-discovery path.
                state.refetch_armed = False
                self.policy.on_discovered(url, via)
            if state.fetched and state.resource is not None:
                self._on_resource_available(state.resource)
        if fresh:
            self.policy.on_discovered(url, via)

    # -- fetching ---------------------------------------------------------------

    def start_fetch(self, url: str, priority: float = 1.0) -> None:
        """Begin downloading ``url`` (cache-aware; idempotent)."""
        state = self.state_of(url)
        if state.fetch_requested:
            return
        state.fetch_requested = True
        timeline = state.timeline
        if timeline.discovered_at is None:
            timeline.discovered_at = self.sim.now
            timeline.discovered_via = "fetch"
        timeline.fetch_started_at = self.sim.now
        entry = self.cache.lookup(url, self.browser_config.when_hours)
        if entry is not None:
            timeline.from_cache = True
            self.sim.schedule_drop(
                self.browser_config.cache_hit_latency,
                lambda: self._fetched(url, from_cache=True),
            )
            self._scanner_wakeup(url)
            return
        self.cookies.cookie_for(url.partition("/")[0])
        # A fetch of a URL the page has not referenced yet is a speculative
        # hint prefetch; fault plans can target those specifically.
        is_hint = (
            not state.locally_referenced
            and timeline.discovered_via == "hint"
        )
        self.client.fetch(
            url,
            priority=priority,
            is_hint=is_hint,
            on_headers=self._headers_arrived,
            on_complete=lambda fetch: self._fetched(url, fetch=fetch),
            on_error=lambda fetch: self._fetch_failed(url, fetch),
        )
        # The fetch is registered with the client now, so the poll
        # condition for this document (if it is one) just became true.
        self._scanner_wakeup(url)

    def _headers_arrived(self, fetch: Fetch) -> None:
        if fetch.response is not None and fetch.response.error:
            # Injected 5xx headers carry no hints and no usable metadata;
            # the client retries (or fails) the exchange on completion.
            return
        state = self.state_of(fetch.url)
        state.timeline.headers_at = self.sim.now
        self.policy.on_headers(fetch)

    def _fetch_failed(self, url: str, fetch: Fetch) -> None:
        """Terminal transport failure (all retries exhausted) for ``url``.

        A pure hint prefetch degrades gracefully: the load falls back to
        vanilla local discovery, re-requesting the bytes if and when the
        page references the URL.  A locally needed resource instead fails
        like a browser error event — its waiters resume without the bytes
        and its obligations are written off, so onload still fires.
        """
        state = self.state_of(url)
        if state.fetched or state.failed:
            return
        state.timeline.failed = True
        self.client.forget(url)
        locally_needed = (
            state.locally_referenced
            or state.fetch_waiters
            or state.process_waiters
        )
        if locally_needed:
            state.failed = True
            self._any_failed = True
            waiters, state.fetch_waiters = state.fetch_waiters, []
            for callback in waiters:
                callback()
            pwaiters, state.process_waiters = state.process_waiters, []
            for callback in pwaiters:
                callback()
        else:
            state.fetch_requested = False
            state.refetch_armed = True
        self.policy.on_fetch_failed(url)
        self._check_done()

    def _push_arrived(self, push: PushedResponse) -> None:
        """A pushed response started arriving; treat it as discovery."""
        state = self.state_of(push.url)
        state.fetch_requested = True
        state.fetch_obj = push
        timeline = state.timeline
        timeline.pushed = True
        if timeline.discovered_at is None:
            timeline.discovered_at = self.sim.now
            timeline.discovered_via = "push"
        if timeline.fetch_started_at is None:
            timeline.fetch_started_at = push.requested_at
        push.on_complete = _merge(
            push.on_complete, lambda fetch: self._fetched(push.url, fetch=fetch)
        )
        # Pushed documents become scannable at header arrival (the push
        # is already in ``client.fetches``): same transition as a fetch.
        self._scanner_wakeup(push.url)

    def _fetched(
        self,
        url: str,
        fetch: Optional[Fetch] = None,
        from_cache: bool = False,
    ) -> None:
        state = self.state_of(url)
        if state.fetched:
            return
        state.fetched = True
        state.fetch_obj = fetch
        timeline = state.timeline
        timeline.fetched_at = self.sim.now
        if timeline.headers_at is None:
            timeline.headers_at = self.sim.now
        resource = state.resource
        if resource is not None and resource.spec.cacheable and not from_cache:
            self.cache.store(
                url,
                resource.size,
                when_hours=self.browser_config.when_hours,
                max_age_hours=resource.spec.max_age_hours,
                cacheable=True,
            )
        if resource is None:
            # Extraneous hint fetch: pure bandwidth waste.
            if fetch is not None and fetch.response is not None:
                self.wasted_bytes += fetch.response.size
            self.policy.on_fetched(url)
            self._check_done()
            return
        self.policy.on_fetched(url)
        waiters, state.fetch_waiters = state.fetch_waiters, []
        for callback in waiters:
            callback()
        self._on_resource_available(resource)
        self._check_done()

    # -- processing ----------------------------------------------------------

    def _on_resource_available(self, resource: Resource) -> None:
        """Kick type-appropriate processing once bytes are local *and* the
        page has actually referenced the resource (preload semantics)."""
        state = self.state_of(resource.url)
        if not state.fetched or not state.locally_referenced:
            return
        if resource.rtype is ResourceType.CSS:
            if not state.processed and not state._css_queued:
                state._css_queued = True
                self._submit_cpu(
                    self.cpu_profile.css_parse_time(resource.size),
                    lambda: self._css_processed(resource),
                )
        elif resource.rtype is ResourceType.JS:
            if self._script_runs_on_reference(resource):
                self._execute_script(resource, lambda: None)
        elif resource.is_document:
            if resource.parent is None:
                self._doc_parses[resource.url].start()
            elif self._root_parse_done:
                self._start_iframe_parse(resource)
        else:
            if not state.decoded and not state._decode_queued:
                state._decode_queued = True
                # Image decode/raster happens off the main thread (Chrome's
                # impl side), so it costs wall time but no renderer CPU.
                self.sim.schedule_drop(
                    self._cpu_time(
                        self.cpu_profile.decode_time(resource.size)
                    ),
                    lambda: self._decoded(resource),
                )

    def _script_runs_on_reference(self, resource: Resource) -> bool:
        """Scripts not driven by a parser position execute once referenced.

        That covers async scripts (referenced by the scanner) and
        script-computed scripts (referenced when their parent executes).
        Synchronous parser-position scripts are executed by the document
        parser at the right moment instead.
        """
        from repro.pages.resources import Discovery

        if resource.spec.exec_async:
            return True
        if self.browser_config.nonblocking_scripts:
            return True
        return resource.spec.discovery is not Discovery.STATIC_MARKUP

    def _execute_script(
        self,
        resource: Resource,
        on_done: Callable[[], None],
        band: Optional[int] = None,
    ) -> None:
        state = self.state_of(resource.url)
        if state.processed:
            on_done()
            return
        if state.failed and not state.fetched:
            # The script never arrived (terminal fetch failure): nothing
            # to execute, and its children stay undiscovered.
            on_done()
            return

        def run() -> None:
            # Children are inserted during (synchronous) execution, so they
            # must exist before the processed mark can trigger onload.
            for child in resource.children:
                self.discover(child.url, via="script", from_url=resource.url)
            self._mark_processed(resource)
            on_done()

        self._submit_cpu(
            self.cpu_profile.js_exec_time(resource.size), run, band=band
        )

    def _css_processed(self, resource: Resource) -> None:
        for child in resource.children:
            self.discover(child.url, via="css", from_url=resource.url)
        self._mark_processed(resource)

    def _mark_processed(self, resource: Resource) -> None:
        state = self.state_of(resource.url)
        if state.processed:
            return
        state.processed = True
        state.timeline.processed_at = self.sim.now
        waiters, state.process_waiters = state.process_waiters, []
        for callback in waiters:
            callback()
        self._check_done()

    def _decoded(self, resource: Resource) -> None:
        state = self.state_of(resource.url)
        if state.decoded:
            return
        state.decoded = True
        rendered = self.sim.now
        if self._layout_done_at is not None:
            rendered = max(rendered, self._layout_done_at)
        state.timeline.rendered_at = rendered
        if resource.spec.above_fold and not resource.in_iframe:
            self._render_events.append((rendered, resource.spec.pixel_weight))
        self._check_done()

    # -- document parsing -------------------------------------------------------

    def _build_parse(self, doc: Resource) -> DocumentParse:
        def wait_for_bytes(
            document: Resource, offset: int, callback: Callable[[], None]
        ) -> None:
            state = self.state_of(document.url)
            if state.fetched:
                self.sim.call_soon(callback)
                return
            if state.failed:
                # The document's bytes will never arrive; freeze its parse
                # (its obligations are written off by the failure).
                return
            fetch = state.fetch_obj or self.client.fetches.get(document.url)
            if fetch is None or fetch.completed_at is not None:
                state.fetch_waiters.append(callback)
                return
            fetch.watch_body_offset(offset, callback)

        def wait_for_fetch(
            child: Resource, callback: Callable[[], None]
        ) -> None:
            state = self.state_of(child.url)
            if state.fetched or state.failed:
                self.sim.call_soon(callback)
                return
            self.policy.ensure_fetch(child.url)
            state.fetch_waiters.append(callback)

        def wait_for_css(
            sheets: List[Resource], callback: Callable[[], None]
        ) -> None:
            pending = [
                sheet
                for sheet in sheets
                if not self.state_of(sheet.url).processed
                and not self.state_of(sheet.url).failed
            ]
            if not pending:
                self.sim.call_soon(callback)
                return
            remaining = {"count": len(pending)}

            def one_done() -> None:
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    callback()

            for sheet in pending:
                self.policy.ensure_fetch(sheet.url)
                self.state_of(sheet.url).process_waiters.append(one_done)

        from repro.browser.cpu import BAND_PARSER

        def submit_parser_cpu(
            seconds: float, on_done: Callable[[], None]
        ) -> None:
            self._submit_cpu(seconds, on_done, band=BAND_PARSER)

        def execute_parser_script(
            resource: Resource, on_done: Callable[[], None]
        ) -> None:
            self._execute_script(resource, on_done, band=BAND_PARSER)

        on_segment = None
        if doc.parent is None:
            skeleton_weight = max(
                2.0,
                sum(
                    resource.spec.pixel_weight
                    for resource in self.snapshot.all_resources()
                    if resource.spec.above_fold and not resource.in_iframe
                ),
            )

            def paint_progress(length: int, _cursor: int) -> None:
                # Progressive paint: parsed content becomes visible as the
                # parser advances through the document.
                self._render_events.append(
                    (self.sim.now, skeleton_weight * length / doc.size)
                )

            on_segment = paint_progress

        return DocumentParse(
            doc,
            parse_time=self.cpu_profile.html_parse_time,
            submit_cpu=submit_parser_cpu,
            wait_for_bytes=wait_for_bytes,
            wait_for_fetch=wait_for_fetch,
            wait_for_css=wait_for_css,
            execute_script=execute_parser_script,
            on_complete=self._parse_complete,
            nonblocking_scripts=self.browser_config.nonblocking_scripts,
            on_segment=on_segment,
        )

    def _parse_complete(self, parse: DocumentParse) -> None:
        doc = parse.doc
        self._mark_processed(doc)
        if doc.parent is None:
            self._root_parse_done = True
            self._root_parse_done_at = self.sim.now
            self._submit_cpu(self.cpu_profile.layout_time(), self._layout_done)
            self._start_iframe_parses()
        self._check_done()

    def _layout_done(self) -> None:
        self._layout_done_at = self.sim.now
        # Final layout settles whatever the progressive paints left over.
        self._render_events.append((self.sim.now, 2.0))
        self._check_done()

    def _start_iframe_parses(self) -> None:
        if self._iframe_parses_started:
            return
        self._iframe_parses_started = True
        for doc in self.snapshot.documents():
            if doc.parent is None:
                continue
            state = self.state_of(doc.url)
            if state.timeline.discovered_at is None:
                continue
            self.policy.ensure_fetch(doc.url)
            if state.fetched:
                self._start_iframe_parse(doc)
            # else: _on_resource_available starts it after fetch.

    def _start_iframe_parse(self, doc: Resource) -> None:
        parse = self._doc_parses.get(doc.url)
        if parse is None:
            parse = self._build_parse(doc)
            self._doc_parses[doc.url] = parse
        parse.start()

    # -- scanner -------------------------------------------------------------

    def _arm_scanner(self, doc: Resource) -> None:
        """Discover static references as their bytes stream in."""
        from repro.browser.parser import static_refs

        state = self.state_of(doc.url)

        def arm(fetch: Fetch) -> None:
            for ref in static_refs(doc):
                child_url = ref.child.url
                fetch.watch_body_offset(
                    ref.byte_offset,
                    lambda u=child_url: self.discover(
                        u, via="scanner", from_url=doc.url
                    ),
                )

        if state.timeline.from_cache or state.fetched:
            for ref in static_refs(doc):
                self.discover(ref.child.url, via="scanner", from_url=doc.url)
            return
        fetch = self.client.fetches.get(doc.url)
        if fetch is not None:
            arm(fetch)

    # -- completion ------------------------------------------------------------

    def _orphaned(self, resource) -> bool:
        """True if ``resource`` can never be locally referenced: an
        ancestor terminally failed, so the parse/execution that would
        reference it will never run.  Hint/push prefetches of such
        resources must not hold onload open — their bytes are waste, not
        obligations."""
        node = resource.parent
        while node is not None:
            state = self._states.get(node.url)
            if state is not None and state.failed:
                return True
            node = node.parent
        return False

    def _pending_obligations(self) -> List[str]:
        pending: List[str] = []
        if not self._root_parse_done:
            pending.append("root-parse")
        if self._root_parse_done and self._layout_done_at is None:
            pending.append("layout")
        for url, state in self._states.items():
            resource = state.resource
            if resource is None:
                continue
            timeline = state.timeline
            if timeline.discovered_at is None:
                continue
            if state.failed:
                # Terminal fetch failure: obligations written off.
                continue
            if (
                self._any_failed
                and not state.locally_referenced
                and self._orphaned(resource)
            ):
                continue
            if not state.fetched:
                pending.append(f"fetch:{url}")
                continue
            if resource.is_document:
                parse = self._doc_parses.get(url)
                if resource.parent is None:
                    if parse is None or not parse.finished:
                        pending.append(f"parse:{url}")
                elif self._root_parse_done and (
                    parse is None or not parse.finished
                ):
                    pending.append(f"parse:{url}")
            elif resource.processable:
                if not state.processed:
                    pending.append(f"process:{url}")
            elif not state.decoded:
                pending.append(f"decode:{url}")
        return pending

    def _check_done(self) -> None:
        """Set ``onload_at`` once no obligation remains.

        This runs after nearly every engine event, so it is a boolean
        re-statement of :meth:`_pending_obligations` with early exits and
        no per-call list or string allocation (the diagnostic form is only
        built when a load wedges).
        """
        if self.onload_at is not None:
            return
        if not self._root_parse_done or self._layout_done_at is None:
            return
        blocker = self._done_blocker
        if blocker is not None:
            state = self._states.get(blocker)
            if state is not None and self._blocks_onload(blocker, state):
                return
        for url, state in self._states.items():
            if self._blocks_onload(url, state):
                self._done_blocker = url
                return
        self.onload_at = self.sim.now

    def _blocks_onload(self, url: str, state: _ResourceState) -> bool:
        """Whether ``url``'s obligations still hold onload back."""
        resource = state.resource
        if resource is None:
            return False
        if state.timeline.discovered_at is None:
            return False
        if state.failed:
            return False
        if (
            self._any_failed
            and not state.locally_referenced
            and self._orphaned(resource)
        ):
            return False
        if not state.fetched:
            return True
        rtype = resource.spec.rtype
        if rtype is ResourceType.HTML:
            parse = self._doc_parses.get(url)
            return parse is None or not parse.finished
        if rtype in PROCESSABLE_TYPES:
            return not state.processed
        return not state.decoded

    # -- driving ----------------------------------------------------------------

    def run(self, time_limit: float = 600.0) -> LoadMetrics:
        """Simulate the load and return metrics.

        Raises ``RuntimeError`` with the outstanding obligations if the
        load wedges (a model bug), rather than reporting bogus numbers.
        """
        root = self.snapshot.root
        self._doc_parses[root.url] = self._build_parse(root)
        if self.browser_config.sample_interval > 0:
            self._arm_sampler(self.browser_config.sample_interval)
        self.discover(root.url, via="navigation")
        if self.browser_config.preknown_urls:
            for resource in self.snapshot.all_resources():
                self.discover(resource.url, via="preknown")
        # Arm scanners lazily: once per document, when its fetch exists.
        if self._event_driven:
            self._arm_scanners_event_driven()
        else:
            self._arm_scanners_loop()
        self.sim.run(until=time_limit)
        if self._event_driven and self._scanner_waiting:
            # A document never started fetching (terminal failure or an
            # undiscovered iframe).  The reference loop keeps polling to
            # the time horizon in that case; count those ticks so
            # ``scanner_polls_elided`` reports the full saving.
            tick = self._scanner_next_tick
            while tick <= time_limit:
                tick += SCANNER_POLL_INTERVAL
                self._scanner_polls_elided += 1
            self._scanner_next_tick = tick
        if self.onload_at is None:
            pending = self._pending_obligations()
            raise RuntimeError(
                f"page {self.snapshot.page!r} never fired onload; "
                f"pending={pending[:8]} (of {len(pending)})"
            )
        return self._collect_metrics()

    def _arm_sampler(self, interval: float) -> None:
        """Record (time, cpu_busy, active_streams) until onload."""
        self._samples: List = []

        def sample() -> None:
            self._samples.append(
                (
                    self.sim.now,
                    self.cpu.busy,
                    self.client.link.active_stream_count(),
                )
            )
            if self.onload_at is None:
                self.sim.schedule_drop(interval, sample)

        sample()

    def _scanner_sweep(self) -> None:
        """One pass of the scanner poll body at the current timestamp.

        Arms every still-waiting document whose fetch now exists (the
        exact condition the legacy tick checks) and drops it from the
        to-do list.  Both drivers — the standing 5 ms poll and the
        demand-driven wakeup — run this same body, so an arming's side
        effects are identical whichever driver reached the timestamp.
        """
        self._browser_wakeups += 1
        still_waiting: List[Resource] = []
        for doc in self._scanner_waiting:
            state = self._states.get(doc.url)
            started = state is not None and (
                state.fetch_requested
                and (
                    state.timeline.from_cache
                    or doc.url in self.client.fetches
                )
            )
            if started:
                self._arm_scanner(doc)
            else:
                still_waiting.append(doc)
        self._scanner_waiting = still_waiting
        self._scanner_waiting_urls = {doc.url for doc in still_waiting}

    def _arm_scanners_loop(self) -> None:
        """Reference driver: attach scanners via a standing 5 ms poll.

        The document set is fixed for the whole load, so the poll tick
        walks a shrinking to-do list instead of re-deriving the document
        list (a full resource-tree walk) on every 5 ms tick.  Kept as
        the reference the event-driven path is equivalence-tested
        against (``NetworkConfig.event_driven_browser = False``).
        """
        self._scanner_waiting = list(self.snapshot.documents())

        def poll() -> None:
            self._scanner_sweep()
            if self._scanner_waiting:
                self.sim.schedule_drop(SCANNER_POLL_INTERVAL, poll)

        # The poll drives itself; the ``_event_driven`` guard in
        # :meth:`_scanner_wakeup` keeps the demand-driven hooks inert,
        # so an event-driven arming can never race the reference loop.
        poll()

    def _arm_scanners_event_driven(self) -> None:
        """Demand-driven driver: arm scanners from fetch-created hooks.

        Replaces the standing poll with coalesced wakeup events placed
        on the poll's own virtual time grid.  :meth:`_scanner_wakeup`
        fires whenever a waiting document's poll condition becomes true
        (end of :meth:`start_fetch`, push header arrival) and schedules
        one arming event at the first grid tick strictly after ``now`` —
        exactly when the legacy loop would next examine the document.
        Grid ticks with no pending wakeup are never scheduled at all
        (counted by ``scanner_polls_elided``), which is what opens the
        silent windows the link's batch executor needs.  Discovery
        timestamps, and therefore :class:`LoadMetrics`, are
        bit-identical to the poll engine's by construction; the
        equivalence suite and the ``scanner-wakeup-bound`` audit
        invariant enforce it.
        """
        self._scanner_waiting = list(self.snapshot.documents())
        self._scanner_waiting_urls = {
            doc.url for doc in self._scanner_waiting
        }
        # The poll's inline t=0 tick: run() calls this after the root
        # discovery, so the root (and any preknown/cached document) arms
        # synchronously, exactly as under the reference loop.
        self._scanner_sweep()

    # repro: hotpath
    def _scanner_wakeup(self, url: str) -> None:
        """A fetch for ``url`` now exists; schedule its scanner arming.

        Called from every fetch-start transition, so the fast path is
        two lookups and no allocation.  The arming lands on the first
        5 ms grid tick strictly after ``now`` — computed by the same
        iterated float addition the poll loop performs, so the timestamp
        is bit-identical to the tick the reference engine would arm at.
        One pending wakeup serves every document that becomes ready
        before it fires (the sweep re-checks all of them), mirroring the
        poll tick's batch semantics.
        """
        if not self._event_driven or url not in self._scanner_waiting_urls:
            return
        now = self.sim.now
        if self._scanner_requested_at is None:
            self._scanner_requested_at = now
        if self._scanner_arm_at is not None:
            # The pending wakeup is at the next grid tick after ``now``
            # already (grid ticks are never scheduled early), so it
            # covers this document too.
            return
        tick = self._scanner_next_tick
        while tick <= now:
            tick += SCANNER_POLL_INTERVAL
            self._scanner_polls_elided += 1
        self._scanner_arm_at = tick
        self._scanner_next_tick = tick + SCANNER_POLL_INTERVAL
        self.sim.schedule_at(tick, self._scanner_wakeup_fired)

    def _scanner_wakeup_fired(self) -> None:
        if audit.ENABLED and self._scanner_requested_at is not None:
            audit.scanner_wakeup_bound(
                self.sim.now,
                self._scanner_requested_at,
                SCANNER_POLL_INTERVAL,
            )
        self._scanner_arm_at = None
        self._scanner_requested_at = None
        self._scanner_sweep()

    def _collect_metrics(self) -> LoadMetrics:
        onload = self.onload_at or self.sim.now
        timelines = self.timelines()
        aft = self._compute_aft()
        if audit.ENABLED:
            link = self.client.link
            in_flight = sum(
                stream.bytes_done
                for channel in link.channels
                for stream in channel.streams
                if not stream.done
            )
            audit.bytes_conserved(
                link.bytes_delivered,
                link.bytes_retired + in_flight,
                link.bytes_delivered,
                # The link integrates rate*dt without clamping at stream
                # ends; each boundary crossing can overshoot by a float
                # ulp, so the budget scales with the bytes moved.
                tolerance=max(1.0, 1e-6 * link.bytes_delivered),
            )
        return LoadMetrics(
            page=self.snapshot.page,
            plt=onload,
            aft=aft,
            speed_index=speed_index(self._render_events, aft),
            onload_at=onload,
            cpu_busy_time=self.cpu.busy_time,
            bytes_fetched=self.client.link.bytes_delivered,
            wasted_bytes=self.wasted_bytes,
            retries=self.client.retries,
            timeouts=self.client.timeouts,
            connection_drops=self.client.drops,
            error_responses=self.client.error_responses,
            failed_fetches=self.client.failures,
            fault_wasted_bytes=self.client.fault_wasted_bytes,
            link_busy_time=self.client.link.busy_time,
            link_capacity_bps=self.net_config.downlink_bps,
            timelines=timelines,
            critical_path=reconstruct_critical_path(timelines, onload),
            utilization_trace=getattr(self, "_samples", []),
            engine_counters={
                "events_scheduled": self.sim.events_scheduled,
                "events_executed": self.sim.executed,
                "events_cancelled": self.sim.events_cancelled,
                "heap_compactions": self.sim.compactions,
                "inline_advances": self.sim.inline_advances,
                "link_pokes": self.client.link.pokes,
                "link_fast_forward_steps": self.client.link.ff_steps,
                "link_rate_recomputes": self.client.link.rate_recomputes,
                "link_batch_runs": self.client.link.batch_runs,
                "link_batch_steps": self.client.link.batch_steps,
                "link_wf_fast_hits": self.client.link.wf_fast_hits,
                "link_tick_keeps": self.client.link.tick_keeps,
                "soon_coalesced": self.sim.soon_coalesced,
                "browser_wakeups": self._browser_wakeups,
                "scanner_polls_elided": self._scanner_polls_elided,
            },
        )

    def _compute_aft(self) -> float:
        if not self._render_events:
            return self.onload_at or self.sim.now
        return max(time for time, _ in self._render_events)


def _merge(
    first: Optional[Callable[[Fetch], None]],
    second: Callable[[Fetch], None],
) -> Callable[[Fetch], None]:
    def combined(fetch: Fetch) -> None:
        if first is not None:
            first(fetch)
        second(fetch)

    return combined


def load_page(
    snapshot: PageSnapshot,
    servers: Dict[str, OriginServer],
    net_config: Optional[NetworkConfig] = None,
    browser_config: Optional[BrowserConfig] = None,
    policy: Optional[FetchPolicy] = None,
) -> LoadMetrics:
    """One-shot convenience wrapper around :class:`PageLoadEngine`."""
    engine = PageLoadEngine(
        snapshot, servers, net_config, browser_config, policy
    )
    return engine.run()

"""Tests for the FP/FN accuracy metrics (Fig 21)."""

import pytest

from repro.analysis.accuracy import (
    AccuracyResult,
    hintable_universe,
    predictable_partition,
    predictable_share,
    score_strategy,
)
from repro.core.resolver import ResolutionStrategy


class TestPredictablePartition:
    def test_partition_is_disjoint_cover(self, page, stamp):
        predictable, unpredictable, load = predictable_partition(page, stamp)
        universe = {r.url for r in hintable_universe(load)}
        assert predictable | unpredictable == universe
        assert not (predictable & unpredictable)

    def test_nonce_urls_are_unpredictable(self, page, stamp):
        predictable, unpredictable, load = predictable_partition(page, stamp)
        for resource in hintable_universe(load):
            if resource.spec.unpredictable:
                assert resource.url in unpredictable

    def test_stable_urls_are_predictable(self, page, stamp):
        predictable, _, load = predictable_partition(page, stamp)
        for resource in hintable_universe(load):
            spec = resource.spec
            if (
                spec.lifetime_hours is None
                and not spec.unpredictable
                and not spec.personalized
            ):
                assert resource.url in predictable

    def test_universe_excludes_iframe_content(self, page, stamp):
        _, _, load = predictable_partition(page, stamp)
        for resource in hintable_universe(load):
            assert not resource.in_iframe


class TestAccuracyResult:
    def test_rates(self):
        result = AccuracyResult(
            page="p",
            strategy=ResolutionStrategy.VROOM,
            predictable_count=50,
            false_negatives=5,
            false_positives=10,
        )
        assert result.fn_rate == pytest.approx(0.1)
        assert result.fp_rate == pytest.approx(0.2)

    def test_empty_predictable_set(self):
        result = AccuracyResult(
            page="p",
            strategy=ResolutionStrategy.VROOM,
            predictable_count=0,
            false_negatives=0,
            false_positives=0,
        )
        assert result.fn_rate == 0.0
        assert result.fp_rate == 0.0


class TestStrategyScores:
    def test_vroom_fn_below_offline_fn(self, corpus, stamp):
        """Fig 21b: online analysis rescues fresh content."""
        better = 0
        for page in corpus:
            vroom = score_strategy(page, stamp, ResolutionStrategy.VROOM)
            offline = score_strategy(
                page, stamp, ResolutionStrategy.OFFLINE_ONLY
            )
            if vroom.fn_rate <= offline.fn_rate:
                better += 1
        assert better >= len(corpus) - 1

    def test_vroom_fn_small(self, corpus, stamp):
        """Fig 21b: median Vroom FN below ~10% on this corpus."""
        import statistics

        rates = [
            score_strategy(page, stamp, ResolutionStrategy.VROOM).fn_rate
            for page in corpus
        ]
        assert statistics.median(rates) < 0.10

    def test_online_only_fp_above_vroom_fp(self, corpus, stamp):
        """Fig 21c: the online-only strawman's own nonce URLs inflate FP."""
        import statistics

        online = [
            score_strategy(
                page, stamp, ResolutionStrategy.ONLINE_ONLY
            ).fp_rate
            for page in corpus
        ]
        vroom = [
            score_strategy(page, stamp, ResolutionStrategy.VROOM).fp_rate
            for page in corpus
        ]
        assert statistics.median(online) > statistics.median(vroom)

    def test_predictable_share_bounds(self, corpus, stamp):
        for page in corpus[:3]:
            count_share, byte_share = predictable_share(page, stamp)
            assert 0.0 <= count_share <= 1.0
            assert 0.0 <= byte_share <= 1.0

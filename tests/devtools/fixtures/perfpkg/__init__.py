"""Fixture package for the PERF4xx hot-path rules (test_perf_rules.py)."""

"""Calibration regression guard.

The reproduction's value lives in its calibration: the orderings and
ratios documented in EXPERIMENTS.md. This module pins the expected
medians (with tolerance bands wide enough for corpus-size noise but
tight enough to catch accidental model drift) and checks a fresh run
against them. `tests/integration/test_regression_guard.py` runs it on
every test session.

When a deliberate recalibration moves the numbers, update EXPECTATIONS
alongside EXPERIMENTS.md — the guard exists to make that step conscious.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.configs import run_config
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.recorder import record_snapshot


@dataclass(frozen=True)
class Expectation:
    """A pinned median with a relative tolerance band."""

    metric: str
    expected: float
    rel_tolerance: float = 0.25

    def check(self, measured: float) -> str:
        """Empty string if within band; otherwise a failure description."""
        low = self.expected * (1.0 - self.rel_tolerance)
        high = self.expected * (1.0 + self.rel_tolerance)
        if low <= measured <= high:
            return ""
        return (
            f"{self.metric}: measured {measured:.3f} outside "
            f"[{low:.3f}, {high:.3f}] (pinned {self.expected:.3f})"
        )


#: Pinned medians from the calibrated build (12 News/Sports pages,
#: seed-stable corpus).  See docs/CALIBRATION.md for provenance.
EXPECTATIONS = (
    Expectation("http1_plt", 7.55, 0.20),
    Expectation("http2_plt", 7.24, 0.20),
    Expectation("vroom_plt", 6.01, 0.20),
    Expectation("polaris_plt", 6.65, 0.20),
    Expectation("cpu_bound_plt", 4.40, 0.25),
    Expectation("network_bound_plt", 2.48, 0.25),
)

_CONFIG_BY_METRIC = {
    "http1_plt": "http1",
    "http2_plt": "http2",
    "vroom_plt": "vroom",
    "polaris_plt": "polaris",
    "cpu_bound_plt": "cpu-bound",
    "network_bound_plt": "network-bound",
}


def measure_medians(count: int = 12) -> Dict[str, float]:
    """Fresh medians for every pinned metric."""
    stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    values: Dict[str, List[float]] = {
        metric: [] for metric in _CONFIG_BY_METRIC
    }
    for page in news_sports_corpus(count):
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        for metric, config in _CONFIG_BY_METRIC.items():
            values[metric].append(
                run_config(config, page, snapshot, store).plt
            )
    return {
        metric: statistics.median(series)
        for metric, series in values.items()
    }


def check_calibration(count: int = 12) -> List[str]:
    """Run the guard; returns a list of violations (empty = healthy)."""
    measured = measure_medians(count)
    failures = []
    for expectation in EXPECTATIONS:
        message = expectation.check(measured[expectation.metric])
        if message:
            failures.append(message)
    # Ordering invariants are checked unconditionally — they are the
    # reproduction's core claim and hold at any calibration.
    if not (
        measured["vroom_plt"]
        < measured["http2_plt"]
        <= measured["http1_plt"] * 1.02
    ):
        failures.append(
            "ordering violated: expected vroom < http2 <= http1, got "
            f"{measured['vroom_plt']:.2f} / {measured['http2_plt']:.2f} / "
            f"{measured['http1_plt']:.2f}"
        )
    if not (
        measured["vroom_plt"] < measured["polaris_plt"] * 1.02
    ):
        failures.append(
            "ordering violated: expected vroom <= polaris, got "
            f"{measured['vroom_plt']:.2f} / {measured['polaris_plt']:.2f}"
        )
    bound = max(
        measured["cpu_bound_plt"], measured["network_bound_plt"]
    )
    if bound > measured["vroom_plt"] * 1.02:
        failures.append(
            f"lower bound {bound:.2f} exceeds vroom "
            f"{measured['vroom_plt']:.2f}"
        )
    return failures

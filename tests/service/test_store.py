"""Sharded dependency store: ring, shards, LRU, TTL, histograms."""

import pytest

from repro.service.store import (
    DependencyStore,
    HashRing,
    LatencyHistogram,
    LookupStatus,
    Shard,
    StoreConfig,
    StoreEntry,
    payload_size_bytes,
    stable_hash,
)


def entry(page="news0", device="phone", at=0.0, size=100):
    return StoreEntry(
        page=page,
        device_class=device,
        payload={"urls": [], "exemplars": {}},
        computed_at_hours=at,
        size_bytes=size,
    )


class TestStableHash:
    def test_deterministic_and_seed_independent(self):
        # sha1-based: the value is a constant of the string, not of
        # PYTHONHASHSEED (unlike builtin hash()).
        assert stable_hash("news0.com/") == stable_hash("news0.com/")
        assert stable_hash("a") != stable_hash("b")
        assert 0 <= stable_hash("x") < 2 ** 64


class TestHashRing:
    def test_routes_all_shards(self):
        ring = HashRing(shard_count=8, vnodes=64)
        hit = {ring.shard_for(f"page{i}.com/") for i in range(400)}
        assert hit == set(range(8))

    def test_routing_is_stable(self):
        first = HashRing(4)
        second = HashRing(4)
        for i in range(100):
            key = f"k{i}"
            assert first.shard_for(key) == second.shard_for(key)

    def test_adding_shards_moves_a_minority_of_keys(self):
        small = HashRing(8)
        grown = HashRing(9)
        keys = [f"page{i}.com/" for i in range(1000)]
        moved = sum(
            1 for key in keys if small.shard_for(key) != grown.shard_for(key)
        )
        # Consistent hashing: ~1/9 of the keyspace moves, not most of it.
        assert moved < 350

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)


class TestShardLookup:
    def test_miss_then_hit(self):
        shard = Shard(0, 10_000)
        got, status = shard.lookup(
            ("news0", "phone"), 1.0, ttl_hours=12.0, freshness_hours=2.0
        )
        assert got is None and status is LookupStatus.MISS
        shard.insert(entry(at=0.5))
        got, status = shard.lookup(
            ("news0", "phone"), 1.0, ttl_hours=12.0, freshness_hours=2.0
        )
        assert got is not None and status is LookupStatus.HIT
        assert got.hits == 1

    def test_stale_hit_within_ttl(self):
        shard = Shard(0, 10_000)
        shard.insert(entry(at=0.0))
        got, status = shard.lookup(
            ("news0", "phone"), 5.0, ttl_hours=12.0, freshness_hours=2.0
        )
        assert got is not None and status is LookupStatus.STALE_HIT
        assert shard.counters.stale_hits == 1

    def test_expired_entry_is_dropped(self):
        shard = Shard(0, 10_000)
        shard.insert(entry(at=0.0, size=100))
        got, status = shard.lookup(
            ("news0", "phone"), 20.0, ttl_hours=12.0, freshness_hours=2.0
        )
        assert got is None and status is LookupStatus.EXPIRED
        assert len(shard) == 0
        assert shard.counters.resident_bytes == 0
        # The key is genuinely gone: the next lookup is a plain miss.
        _, status = shard.lookup(
            ("news0", "phone"), 20.0, ttl_hours=12.0, freshness_hours=2.0
        )
        assert status is LookupStatus.MISS


class TestShardLru:
    def test_eviction_is_least_recently_used(self):
        shard = Shard(0, 250)
        shard.insert(entry(page="a", size=100))
        shard.insert(entry(page="b", size=100))
        # Touch "a" so "b" becomes the LRU victim.
        shard.lookup(("a", "phone"), 0.0, ttl_hours=12.0, freshness_hours=2.0)
        shard.insert(entry(page="c", size=100))
        assert [e.page for e in shard.entries()] == ["a", "c"]
        assert shard.counters.evictions == 1
        assert shard.counters.resident_bytes == 200

    def test_reinsert_replaces_without_eviction(self):
        shard = Shard(0, 250)
        shard.insert(entry(page="a", size=100))
        shard.insert(entry(page="a", size=150))
        assert len(shard) == 1
        assert shard.counters.evictions == 0
        assert shard.counters.resident_bytes == 150

    def test_oversized_entry_rejected(self):
        shard = Shard(0, 100)
        shard.insert(entry(page="a", size=90))
        assert not shard.insert(entry(page="big", size=101))
        assert shard.counters.rejected == 1
        assert [e.page for e in shard.entries()] == ["a"]

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Shard(0, 0)


class TestLatencyHistogram:
    def test_percentiles_are_bucket_edges(self):
        histogram = LatencyHistogram(bucket_ms=0.1, buckets=100)
        for value in (0.05, 0.15, 0.25, 0.95):
            histogram.record(value)
        assert histogram.samples == 4
        assert histogram.percentile(0.5) == pytest.approx(0.2)
        assert histogram.percentile(0.99) == pytest.approx(1.0)
        assert histogram.mean == pytest.approx(0.35)

    def test_overflow_bucket(self):
        histogram = LatencyHistogram(bucket_ms=0.1, buckets=10)
        histogram.record(99.0)
        assert histogram.percentile(0.5) == pytest.approx(1.1)

    def test_negative_sample_clamps_to_the_first_bucket(self):
        # Regression: int(-0.5 / bucket) is a negative index, which
        # Python would quietly resolve from the tail — one bad sample
        # used to land in the overflow bucket and drag p99 to the max.
        histogram = LatencyHistogram(bucket_ms=0.1, buckets=10)
        histogram.record(-0.5)
        assert histogram.samples == 1
        assert histogram.overflow == 0
        assert histogram.percentile(0.99) == pytest.approx(0.1)

    def test_overflow_is_surfaced_in_the_summary(self):
        histogram = LatencyHistogram(bucket_ms=0.1, buckets=10)
        histogram.record(0.05)
        histogram.record(99.0)
        summary = histogram.summary()
        assert summary["overflow"] == 1
        assert summary["p999_ms"] == pytest.approx(1.1)
        assert "p999_ms" in LatencyHistogram().summary()

    def test_merged_equals_single_stream(self):
        left, right, both = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        for index in range(50):
            value = 0.01 * index
            (left if index % 2 else right).record(value)
            both.record(value)
        merged = LatencyHistogram.merged([left, right])
        assert merged.summary() == both.summary()

    def test_merged_rejects_mixed_geometry(self):
        with pytest.raises(ValueError):
            LatencyHistogram.merged(
                [LatencyHistogram(buckets=10), LatencyHistogram(buckets=20)]
            )

    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.99) == 0.0
        assert histogram.mean == 0.0
        assert LatencyHistogram.merged([]).samples == 0


class TestDependencyStore:
    def test_routing_is_consistent_with_the_ring(self):
        store = DependencyStore(StoreConfig(shard_count=4))
        for i in range(50):
            url = f"page{i}.com/"
            assert store.shard_for_page(url).index == store.ring.shard_for(
                url
            )

    def test_lookup_insert_totals(self):
        store = DependencyStore(StoreConfig(shard_count=4))
        assert store.insert("news0.com/", entry(at=1.0))
        got, status, shard = store.lookup("news0.com/", "news0", "phone", 1.5)
        assert status is LookupStatus.HIT
        assert got.page == "news0"
        totals = store.totals()
        assert totals["lookups"] == 1
        assert totals["hits"] == 1
        assert totals["inserts"] == 1
        assert totals["resident_bytes"] == 100


class TestPayloadSize:
    def test_grows_with_urls_and_exemplars(self):
        empty = payload_size_bytes({"urls": [], "exemplars": {}})
        loaded = payload_size_bytes(
            {"urls": ["a.com/x", "a.com/y"], "exemplars": {"a.com/x": {}}}
        )
        assert loaded > empty
        assert loaded == empty + len("a.com/x") + len("a.com/y") + 4 + 48

    def test_counts_utf8_bytes_not_code_points(self):
        # Regression: len(str) undercounted non-ASCII URLs; the wire
        # cost of "café.com/" is its UTF-8 byte length.
        ascii_size = payload_size_bytes(
            {"urls": ["cafe.com/"], "exemplars": {}}
        )
        utf8_size = payload_size_bytes(
            {"urls": ["café.com/"], "exemplars": {}}
        )
        assert utf8_size == ascii_size + 1  # é encodes to two bytes

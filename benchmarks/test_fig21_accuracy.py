"""Fig 21: accuracy of server-side dependency resolution (Sec 6.2).

Paper: (a) the predictable subset covers >80% of resources and >95% of
bytes; (b) Vroom misses <5% of it (offline-only misses up to 40%,
online-only ~0); (c) Vroom's extraneous returns match offline-only's,
while online-only inflates the set by as much as 20%.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments import figures
from repro.experiments.report import print_figure


def test_fig21_accuracy(benchmark, accuracy_size):
    series = run_once(benchmark, figures.fig21_accuracy, count=accuracy_size)
    print_figure(
        "Fig 21a: predictable subset share",
        {
            "predictable_count_share": series["predictable_count_share"],
            "predictable_byte_share": series["predictable_byte_share"],
        },
        paper_values={
            "predictable_count_share": 0.80,
            "predictable_byte_share": 0.95,
        },
    )
    print_figure(
        "Fig 21b: false negatives (fraction of predictable subset)",
        {
            "vroom_fn": series["vroom_fn"],
            "offline_only_fn": series["offline_only_fn"],
            "online_only_fn": series["online_only_fn"],
        },
        paper_values={
            "vroom_fn": 0.05,
            "offline_only_fn": 0.20,
            "online_only_fn": 0.00,
        },
    )
    print_figure(
        "Fig 21c: false positives (fraction of predictable subset)",
        {
            "vroom_fp": series["vroom_fp"],
            "offline_only_fp": series["offline_only_fp"],
            "online_only_fp": series["online_only_fp"],
        },
        paper_values={
            "vroom_fp": 0.05,
            "offline_only_fp": 0.05,
            "online_only_fp": 0.20,
        },
    )
    # (a) predictable subset dominates, more so in bytes.
    assert median(series["predictable_count_share"]) > 0.6
    assert median(series["predictable_byte_share"]) > median(
        series["predictable_count_share"]
    )
    # (b) FN ordering: vroom ~ online << offline.
    assert median(series["vroom_fn"]) < 0.10
    assert median(series["vroom_fn"]) < median(series["offline_only_fn"])
    assert median(series["online_only_fn"]) < 0.10
    # (c) FP ordering: vroom ~ offline << online.
    assert median(series["online_only_fp"]) > median(series["vroom_fp"])
    assert median(series["vroom_fp"]) < 0.15


def test_flux_calibration(benchmark, corpus_size):
    series = run_once(benchmark, figures.flux_calibration, count=corpus_size)
    print_figure(
        "Sec 4.1 text: back-to-back URL flux (Alexa top-100)",
        series,
        paper_values={"back_to_back_flux": 0.22},
    )
    assert 0.05 < median(series["back_to_back_flux"]) < 0.40

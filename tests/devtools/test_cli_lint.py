"""``repro lint`` end to end through the argparse front end."""

import json
from pathlib import Path

from repro.cli import main
from repro.devtools.baseline import Baseline
from repro.devtools.findings import RULES

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / "lint-baseline.json"


def test_lint_is_clean_with_repo_baseline(capsys):
    code = main([
        "lint", "--root", str(PACKAGE_ROOT),
        "--baseline", str(BASELINE_PATH),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
    assert "0 stale" in out


def test_lint_json_output_is_machine_readable(capsys):
    code = main([
        "lint", "--root", str(PACKAGE_ROOT),
        "--baseline", str(BASELINE_PATH), "--format", "json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["stale_baseline"] == []
    assert payload["summary"]["clean"] is True
    assert payload["summary"]["files_scanned"] > 50


def test_lint_rules_lists_the_registry(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_lint_fails_on_new_finding(tmp_path, capsys):
    layer = tmp_path / "pkg" / "core"
    layer.mkdir(parents=True)
    (layer / "mod.py").write_text(
        "import time\n"
        "def f():\n"
        "    return time.time()\n"
    )
    code = main([
        "lint", "--root", str(tmp_path / "pkg"),
        "--baseline", str(tmp_path / "absent.json"),
    ])
    assert code == 1
    assert "DET104" in capsys.readouterr().out


def test_update_baseline_then_clean(tmp_path, capsys):
    layer = tmp_path / "pkg" / "core"
    layer.mkdir(parents=True)
    (layer / "mod.py").write_text(
        "import random\n"
        "def f():\n"
        "    return random.random()\n"
    )
    baseline_path = tmp_path / "baseline.json"
    assert main([
        "lint", "--root", str(tmp_path / "pkg"),
        "--baseline", str(baseline_path), "--update-baseline",
        "--reason", "seeded RNG pending a determinism fix",
    ]) == 0
    capsys.readouterr()
    entries = Baseline.load(baseline_path).entries
    assert [entry.code for entry in entries] == ["DET103"]
    assert entries[0].reason == "seeded RNG pending a determinism fix"
    assert main([
        "lint", "--root", str(tmp_path / "pkg"),
        "--baseline", str(baseline_path),
    ]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_update_baseline_preserves_existing_reasons(tmp_path, capsys):
    layer = tmp_path / "pkg" / "core"
    layer.mkdir(parents=True)
    (layer / "mod.py").write_text(
        "import random\n"
        "def f():\n"
        "    return random.random()\n"
    )
    baseline_path = tmp_path / "baseline.json"
    main([
        "lint", "--root", str(tmp_path / "pkg"),
        "--baseline", str(baseline_path), "--update-baseline",
        "--reason", "first pass",
    ])
    entries = Baseline.load(baseline_path).entries
    Baseline(
        entries=[
            type(entry)(
                path=entry.path, code=entry.code, message=entry.message,
                occurrence=entry.occurrence, reason="explained now",
            )
            for entry in entries
        ]
    ).save(baseline_path)
    main([
        "lint", "--root", str(tmp_path / "pkg"),
        "--baseline", str(baseline_path), "--update-baseline",
        "--reason", "refreshing the file",
    ])
    capsys.readouterr()
    assert [
        entry.reason for entry in Baseline.load(baseline_path).entries
    ] == ["explained now"]


def _write_finding_package(tmp_path):
    layer = tmp_path / "pkg" / "core"
    layer.mkdir(parents=True)
    (layer / "mod.py").write_text(
        "import random\n"
        "def f():\n"
        "    return random.random()\n"
    )
    return tmp_path / "pkg", tmp_path / "baseline.json"


def test_update_baseline_requires_reason(tmp_path, capsys):
    root, baseline_path = _write_finding_package(tmp_path)
    code = main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--update-baseline",
    ])
    assert code == 2
    assert "--reason" in capsys.readouterr().err
    assert not baseline_path.exists()


def test_update_baseline_rejects_todo_reason(tmp_path, capsys):
    root, baseline_path = _write_finding_package(tmp_path)
    code = main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--update-baseline",
        "--reason", "TODO: explain",
    ])
    assert code == 2
    assert "--reason" in capsys.readouterr().err
    assert not baseline_path.exists()

"""Vroom + Polaris hybrid (the paper's stated future-work direction).

Sec 6.1: "These results illustrate that combining the complementary
approaches used in VROOM and Polaris is a promising direction of future
work."  Vroom's weakness is the tail — pages with content servers cannot
predict, where clients fall back to plain self-discovery.  Polaris's
strength is exactly there: it uses a prior-load dependency graph to
prioritise *locally discovered* fetches by how much work hangs below
them.

The hybrid keeps Vroom's staged hint prefetching verbatim, but when the
client itself discovers a resource (scanner, parser, script, CSS), the
fetch priority comes from Polaris's chain weights instead of static
type-based classes.  Unpredictable chains therefore drain in
longest-chain-first order while hints cover everything predictable.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.polaris import prior_load_weights
from repro.browser.engine import BrowserConfig, load_page, network_priority
from repro.browser.metrics import LoadMetrics
from repro.core.scheduler import VroomScheduler
from repro.core.server import vroom_servers
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling
from repro.pages.page import PageBlueprint, PageSnapshot
from repro.replay.store import ReplayStore


class HybridScheduler(VroomScheduler):
    """Vroom staging for hints + Polaris chain weights for discoveries."""

    def __init__(
        self, name_weights: Dict[str, float], js_single_thread: bool = True
    ):
        super().__init__(js_single_thread=js_single_thread)
        self.name_weights = name_weights
        self._max_weight = max(name_weights.values(), default=1.0) or 1.0

    def _chain_priority(self, url: str) -> float:
        resource = self.engine.snapshot_urls.get(url)
        base = network_priority(resource)
        if resource is None:
            return base
        weight = self.name_weights.get(resource.name)
        if weight is None:
            return base
        # Longest chains first, scaled into [0.3, 4.3] like Polaris.
        return 0.3 + 4.0 * (1.0 - weight / self._max_weight)

    def on_discovered(self, url: str, via: str) -> None:
        if via == "hint":
            return
        self._request(url, self._chain_priority(url))

    def ensure_fetch(self, url: str) -> None:
        self._request(url, self._chain_priority(url))


def hybrid_load(
    page: PageBlueprint,
    snapshot: PageSnapshot,
    store: ReplayStore,
    js_single_thread: bool = True,
) -> LoadMetrics:
    """One page load under the hybrid configuration."""
    weights = prior_load_weights(page, snapshot.stamp)
    servers = vroom_servers(page, snapshot, store)
    return load_page(
        snapshot,
        servers,
        NetworkConfig(h2_scheduling=StreamScheduling.FIFO),
        BrowserConfig(when_hours=snapshot.stamp.when_hours),
        policy=HybridScheduler(weights, js_single_thread=js_single_thread),
    )

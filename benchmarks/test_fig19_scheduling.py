"""Fig 19 (+ ablations): cooperative scheduling is key.

Paper: the "Push All, Fetch ASAP" strawman yields no improvement over
baseline HTTP/2 (its median even worsens from contention), while Vroom's
selective push + staged fetches approach the lower bound.  The ablations
DESIGN.md calls out — FIFO response ordering off, JS single-thread delay
off — run in the same sweep.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from benchmarks.test_fig17_prev_load import _print_quartiles


def test_fig19_scheduling(benchmark, corpus_size):
    series = run_once(benchmark, figures.fig19_scheduling, count=corpus_size)
    _print_quartiles(
        "Fig 19: scheduling strawmen + ablations (quartiles)",
        series,
        paper={
            "lower_bound": 5.0,
            "vroom": 5.1,
            "push_all_fetch_asap": 7.5,
            "no_push_no_hints": 7.3,
        },
    )
    assert series["vroom"][1] < series["no_push_no_hints"][1]
    assert series["vroom"][1] <= series["push_all_fetch_asap"][1] + 0.2
    # Fetch-ASAP gives little to no benefit over plain HTTP/2.
    improvement = (
        series["no_push_no_hints"][1] - series["push_all_fetch_asap"][1]
    )
    assert improvement < (
        series["no_push_no_hints"][1] - series["vroom"][1]
    )

"""Runtime invariant audit, end to end.

With the audit armed, full page loads must pass every invariant hook
(clock monotonicity, FIFO discipline and ordering, stage gating, byte
conservation) — and a deliberately broken scheduler must be *caught* by
them.  The second half is the acceptance case: the audit is only worth
its hooks if a real violation trips it.
"""

import pytest

from repro import audit
from repro.baselines.configs import run_config
from repro.browser.engine import BrowserConfig, load_page
from repro.core.scheduler import _STAGE_NET_PRIORITY, VroomScheduler
from repro.core.server import vroom_servers
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling
from repro.pages.resources import Priority


@pytest.fixture()
def armed():
    audit.enable()
    yield
    audit.disable()


@pytest.mark.parametrize(
    "config",
    ["http2", "vroom", "vroom-fair", "vroom-no-stage", "hybrid"],
)
def test_full_load_passes_under_audit(armed, page, snapshot, store, config):
    metrics = run_config(config, page, snapshot, store)
    assert metrics.plt > 0
    assert metrics.bytes_fetched > 0


def test_audit_off_is_bit_identical(page, snapshot, store):
    """Arming the audit must observe, never perturb, the simulation."""
    plain = run_config("vroom", page, snapshot, store)
    audit.enable()
    try:
        audited = run_config("vroom", page, snapshot, store)
    finally:
        audit.disable()
    assert audited.plt == plain.plt
    assert audited.speed_index == plain.speed_index
    assert audited.bytes_fetched == plain.bytes_fetched
    assert list(audited.timelines) == list(plain.timelines)


class GateJumpingScheduler(VroomScheduler):
    """Mutant: issues every hinted URL regardless of the current stage."""

    def _pump(self):
        for stage in (
            Priority.PRELOAD,
            Priority.SEMI_IMPORTANT,
            Priority.UNIMPORTANT,
        ):
            for url in self._hinted[stage]:
                if url in self._failed:
                    continue
                self._request(
                    url, _STAGE_NET_PRIORITY[stage], speculative=True
                )


def _vroom_load(page, snapshot, store, policy):
    return load_page(
        snapshot,
        vroom_servers(page, snapshot, store),
        NetworkConfig(h2_scheduling=StreamScheduling.FIFO),
        BrowserConfig(when_hours=snapshot.stamp.when_hours),
        policy,
    )


def test_audit_catches_stage_gate_violation(armed, page, snapshot, store):
    with pytest.raises(audit.AuditError) as info:
        _vroom_load(page, snapshot, store, GateJumpingScheduler())
    assert info.value.invariant == "stage-gate"


def test_mutant_runs_clean_with_audit_disabled(page, snapshot, store):
    """The same mutant completes silently unaudited — the audit hooks,
    not an unrelated crash, are what catch it."""
    assert not audit.ENABLED
    metrics = _vroom_load(page, snapshot, store, GateJumpingScheduler())
    assert metrics.plt > 0

"""Contract tests for the engine micro-benchmark behind ``repro bench``."""

import pytest

from repro.experiments.engine_bench import (
    SCENARIOS,
    SMOKE_GOLDENS,
    EngineScenario,
    bench_scenario,
    smoke_check,
    smoke_counters,
    smoke_run,
)


@pytest.fixture(scope="module")
def smoke_report():
    return smoke_run()


def test_smoke_matches_pinned_goldens(smoke_report):
    """The deterministic counters equal the goldens CI asserts."""
    assert smoke_check(smoke_report) == []


def test_scenarios_and_goldens_agree():
    assert sorted(SMOKE_GOLDENS) == sorted(s.name for s in SCENARIOS)


def test_smoke_check_flags_drift(smoke_report):
    import copy

    drifted = copy.deepcopy(smoke_report)
    drifted["scenarios"][0]["counters_fast_forward"]["link_pokes"] += 1
    problems = smoke_check(drifted)
    assert len(problems) == 1
    assert "link_pokes" in problems[0]


def test_smoke_check_flags_missing_scenario(smoke_report):
    trimmed = {"scenarios": smoke_report["scenarios"][1:]}
    problems = smoke_check(trimmed)
    assert any("missing from report" in problem for problem in problems)


def test_acceptance_ratios(smoke_report):
    """The ISSUE's perf criteria, on counters only (wall-clock is not
    asserted in CI — single-repeat walls are too noisy)."""
    rows = {row["scenario"]: row for row in smoke_report["scenarios"]}
    assert rows["push-all-high-rtt"]["event_reduction"] >= 2.0
    assert rows["single-stream-drain"]["event_reduction"] >= 2.0
    for row in rows.values():
        assert row["bit_identical"] is True
        assert row["plt"] > 0


def test_counters_cover_both_modes(smoke_report):
    observed = smoke_counters(smoke_report)
    for scenario, counters in observed.items():
        assert counters["events_scheduled_fast_forward"] <= (
            counters["events_scheduled_event_per_tick"]
        ), scenario


def test_custom_scenario_runs_and_verifies():
    """bench_scenario verifies bit-identity on arbitrary shapes, not
    just the pinned ones — the suite is reusable for new scenarios."""
    scenario = EngineScenario(
        name="tiny",
        description="tiny drain",
        kind="synthetic",
        images=1,
        image_bytes=200_000,
        base_rtt=0.05,
        loss_rate=0.0,
    )
    row = bench_scenario(scenario, repeats=1)
    assert row["bit_identical"] is True

"""Packet loss and the HTTP/1.1 fallback (related-work claims).

Paper Sec 8: a single TCP connection "can be detrimental in the presence
of high packet loss", and Vroom "can be used with HTTP/1.1 in the face
of high packet loss".  This bench verifies both: HTTP/2 degrades faster
than HTTP/1.1 as loss grows, and at high loss Vroom's hints over
HTTP/1.1 beat Vroom over HTTP/2.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments.loss_study import loss_sweep


def test_loss_study(benchmark):
    result = run_once(
        benchmark, loss_sweep, count=8, loss_rates=(0.0, 0.05, 0.10)
    )
    print("== PLT medians under packet loss ==")
    print(f"{'loss':<6} {'http1':>8} {'http2':>8} {'vroom/h2':>9} {'vroom/h1':>9}")
    for loss, rows in result.items():
        print(
            f"{loss * 100:4.0f}%  "
            f"{median(rows['http1']):7.2f}s "
            f"{median(rows['http2']):7.2f}s "
            f"{median(rows['vroom_h2']):8.2f}s "
            f"{median(rows['vroom_h1']):8.2f}s"
        )
    clean, high = result[0.0], result[0.10]
    h2_degradation = median(high["http2"]) - median(clean["http2"])
    h1_degradation = median(high["http1"]) - median(clean["http1"])
    # The single-connection design suffers more under loss.
    assert h2_degradation > h1_degradation
    # Vroom's hints help on both transports at every loss rate.
    for loss, rows in result.items():
        assert median(rows["vroom_h2"]) < median(rows["http2"]), loss
        assert median(rows["vroom_h1"]) < median(rows["http1"]), loss
    # At high loss the HTTP/1.1 fallback overtakes Vroom-over-HTTP/2.
    assert median(high["vroom_h1"]) < median(high["vroom_h2"]) + 0.3

"""Structured export of load results (JSON-ready dictionaries).

Downstream tooling — notebooks, dashboards, regression trackers — wants
plain data, not objects.  ``metrics_to_dict`` flattens a
:class:`~repro.browser.metrics.LoadMetrics` into JSON-serialisable
primitives; ``timeline_to_dict`` does one resource.  ``har_like`` renders
the load in a HAR-flavoured shape (log → entries with timings) that chart
tools already understand.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.browser.metrics import LoadMetrics, ResourceTimeline


def timeline_to_dict(timeline: ResourceTimeline) -> Dict[str, Any]:
    return {
        "url": timeline.url,
        "type": (
            timeline.resource.rtype.value if timeline.resource else None
        ),
        "size": timeline.size,
        "priority": (
            timeline.priority.name if timeline.priority is not None else None
        ),
        "discovered_at": timeline.discovered_at,
        "discovered_via": timeline.discovered_via,
        "discovered_from": timeline.discovered_from,
        "fetch_started_at": timeline.fetch_started_at,
        "headers_at": timeline.headers_at,
        "fetched_at": timeline.fetched_at,
        "processed_at": timeline.processed_at,
        "rendered_at": timeline.rendered_at,
        "from_cache": timeline.from_cache,
        "pushed": timeline.pushed,
        "referenced": timeline.referenced,
    }


def metrics_to_dict(
    metrics: LoadMetrics, include_timelines: bool = True
) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "page": metrics.page,
        "plt": metrics.plt,
        "aft": metrics.aft,
        "speed_index": metrics.speed_index,
        "onload_at": metrics.onload_at,
        "cpu_busy_time": metrics.cpu_busy_time,
        "bytes_fetched": metrics.bytes_fetched,
        "wasted_bytes": metrics.wasted_bytes,
        "network_wait_fraction": metrics.network_wait_fraction,
        "cpu_utilization": metrics.cpu_utilization,
        "link_utilization": metrics.link_utilization,
        "link_active_fraction": metrics.link_active_fraction,
        "critical_path": [
            {
                "url": hop.url,
                "kind": hop.kind,
                "start": hop.start,
                "end": hop.end,
            }
            for hop in metrics.critical_path
        ],
    }
    if include_timelines:
        out["resources"] = [
            timeline_to_dict(timeline)
            for timeline in metrics.timelines.values()
        ]
    return out


def har_like(metrics: LoadMetrics) -> Dict[str, Any]:
    """A HAR-flavoured rendering of the load.

    Times follow HAR conventions: per-entry ``startedDateTime`` is the
    fetch start in seconds from navigation (HAR wants ISO dates; we keep
    simulation-relative floats), ``timings`` carry blocked/wait/receive
    in milliseconds, -1 for not-applicable.
    """
    entries: List[Dict[str, Any]] = []
    for timeline in metrics.timelines.values():
        if timeline.fetch_started_at is None:
            continue
        blocked = -1.0
        if timeline.discovered_at is not None:
            blocked = max(
                0.0, timeline.fetch_started_at - timeline.discovered_at
            ) * 1000.0
        wait = receive = -1.0
        if timeline.headers_at is not None:
            wait = max(
                0.0, timeline.headers_at - timeline.fetch_started_at
            ) * 1000.0
            if timeline.fetched_at is not None:
                receive = max(
                    0.0, timeline.fetched_at - timeline.headers_at
                ) * 1000.0
        entries.append(
            {
                "startedDateTime": timeline.fetch_started_at,
                "request": {"url": timeline.url},
                "response": {
                    "bodySize": timeline.size,
                    "fromCache": timeline.from_cache,
                    "pushed": timeline.pushed,
                },
                "timings": {
                    "blocked": blocked,
                    "wait": wait,
                    "receive": receive,
                },
            }
        )
    entries.sort(key=lambda entry: entry["startedDateTime"])
    return {
        "log": {
            "version": "1.2",
            "creator": {"name": "repro-vroom", "version": "1.0"},
            "pages": [
                {
                    "id": metrics.page,
                    "pageTimings": {
                        "onLoad": metrics.onload_at * 1000.0,
                        "aboveTheFold": metrics.aft * 1000.0,
                    },
                }
            ],
            "entries": entries,
        }
    }

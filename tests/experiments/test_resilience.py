"""Tests for the fault-intensity resilience sweep."""

import pytest

from repro.calibration import DEFAULT_EVAL_HOUR
from repro.experiments.parallel import run_sweep
from repro.experiments.resilience import (
    COUNTER_FIELDS,
    DEFAULT_RESILIENCE,
    resilience_sweep,
)
from repro.net.faults import ResiliencePolicy
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.cache import SnapshotCache

COUNT = 2
CONFIGS = ("http2", "vroom")
RATES = (0.0, 0.3)


@pytest.fixture(scope="module")
def sweep():
    return resilience_sweep(
        count=COUNT, rates=RATES, configs=CONFIGS, workers=1,
        cache=SnapshotCache(),
    )


class TestZeroRateControl:
    """An empty fault plan must not perturb the simulation at all."""

    def test_bit_identical_to_unfaulted_sweep(self, sweep):
        pages = news_sports_corpus(COUNT)
        stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
        plain, _ = run_sweep(
            pages, list(CONFIGS), stamp=stamp, workers=1,
            cache=SnapshotCache(),
        )
        for config in CONFIGS:
            assert sweep[0.0][config]["plt"] == list(plain.series(config))

    def test_zero_rate_counters_all_zero(self, sweep):
        for config in CONFIGS:
            row = sweep[0.0][config]
            assert all(row[field] == 0 for field in COUNTER_FIELDS)


class TestFaultedSweep:
    def test_every_load_completes(self, sweep):
        for rate in RATES:
            for config in CONFIGS:
                plts = sweep[rate][config]["plt"]
                assert len(plts) == COUNT
                assert all(plt > 0 for plt in plts)

    def test_faults_surface_in_vroom_counters(self, sweep):
        row = sweep[0.3]["vroom"]
        assert sum(row[field] for field in COUNTER_FIELDS) > 0

    def test_hint_free_baseline_untouched(self, sweep):
        """hint_fault_plan only targets hint prefetches; http2 issues none."""
        row = sweep[0.3]["http2"]
        assert all(row[field] == 0 for field in COUNTER_FIELDS)
        assert row["plt"] == sweep[0.0]["http2"]["plt"]


class TestDeterminism:
    def test_repeat_sweep_identical(self, sweep):
        again = resilience_sweep(
            count=COUNT, rates=RATES, configs=CONFIGS, workers=1,
            cache=SnapshotCache(),
        )
        assert again == sweep

    def test_workers_do_not_change_results(self, sweep):
        parallel = resilience_sweep(
            count=COUNT, rates=RATES, configs=CONFIGS, workers=2,
            cache=SnapshotCache(),
        )
        assert parallel == sweep


class TestDefaults:
    def test_default_policy_enables_recovery(self):
        assert DEFAULT_RESILIENCE.request_timeout > 0
        assert DEFAULT_RESILIENCE.max_retries >= 1

    def test_custom_policy_is_honoured(self):
        out = resilience_sweep(
            count=1, rates=(0.0,), configs=("vroom",), workers=1,
            resilience=ResiliencePolicy(
                request_timeout=9.0, max_retries=1, retry_backoff=0.5
            ),
            cache=SnapshotCache(),
        )
        assert list(out) == [0.0]
        assert len(out[0.0]["vroom"]["plt"]) == 1

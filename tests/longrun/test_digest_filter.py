"""Satellite: digest-aware hint filtering (repro.core.cache_digest).

The wired-up knob (``ScenarioSpec.digest_filter_bits``) models a warm
client that summarises its previous visit's hints as a cache digest;
served hints are filtered through it so the service never re-pushes a
resource the client already holds.  The digest's error is one-sided —
a false positive suppresses a push, but a filtered hint list can never
contain a digest-held URL.
"""

import pytest

import repro.longrun.runner as runner_mod
from repro.core.cache_digest import CacheDigest, filter_pushes
from repro.longrun import run_scenario
from repro.scenario import ScenarioSpec

SMALL = dict(
    pages=4,
    horizon_hours=1.0,
    rate_per_hour=300.0,
    shards=3,
    rollup_hours=0.5,
    digest_filter_bits=8,
)


class TestFilterProperty:
    def test_filtered_hints_never_in_digest(self):
        held = [f"https://cdn.example/asset{i}.js" for i in range(40)]
        digest = CacheDigest(held, bits_per_entry=8)
        pushes = held + [
            f"https://cdn.example/fresh{i}.css" for i in range(40)
        ]
        filtered = filter_pushes(pushes, digest)
        assert all(url not in digest for url in filtered)
        # Everything held was suppressed (membership has no false
        # negatives), so at most the fresh URLs survive.
        assert set(filtered).isdisjoint(held)

    def test_low_bit_digest_only_over_filters(self):
        held = [f"https://a.example/r{i}" for i in range(64)]
        digest = CacheDigest(held, bits_per_entry=2)
        fresh = [f"https://b.example/n{i}" for i in range(64)]
        filtered = filter_pushes(held + fresh, digest)
        # One-sided error: collisions may drop fresh URLs, never leak
        # held ones.
        assert set(filtered) <= set(fresh)


class TestScenarioKnob:
    def test_runner_upholds_digest_invariant(self, monkeypatch):
        """Every filtered hint list the runner ever serves respects the
        digest: no surviving URL is digest-held, and every dropped URL
        is."""
        real = runner_mod.filter_pushes
        calls = []

        def checking(pushes, digest):
            out = real(pushes, digest)
            assert all(url not in digest for url in out)
            assert all(url in digest for url in set(pushes) - set(out))
            calls.append(len(pushes))
            return out

        monkeypatch.setattr(runner_mod, "filter_pushes", checking)
        report = run_scenario(ScenarioSpec(**SMALL))
        assert calls, "digest filter was never exercised"
        assert report["digest"]["filtered_lookups"] == len(calls)

    def test_digest_off_by_default(self):
        report = run_scenario(
            ScenarioSpec(**{**SMALL, "digest_filter_bits": 0})
        )
        assert report["digest"] == {
            "bits_per_entry": 0,
            "filtered_lookups": 0,
            "filtered_urls": 0,
        }

    def test_digest_filtering_changes_served_stream(self):
        with_digest = run_scenario(ScenarioSpec(**SMALL))
        without = run_scenario(
            ScenarioSpec(**{**SMALL, "digest_filter_bits": 0})
        )
        assert with_digest["digest"]["filtered_urls"] > 0
        assert with_digest["chain"] != without["chain"]

    def test_bits_knob_validated(self):
        with pytest.raises(ValueError, match="digest_filter_bits"):
            ScenarioSpec(**{**SMALL, "digest_filter_bits": 33})

"""Scheduler behaviour with hints arriving from multiple documents."""

from repro.browser.engine import BrowserConfig, PageLoadEngine
from repro.core.scheduler import VroomScheduler
from repro.core.server import vroom_servers
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling


def run_with_policy(page, snapshot, store):
    policy = VroomScheduler()
    engine = PageLoadEngine(
        snapshot,
        vroom_servers(page, snapshot, store),
        NetworkConfig(h2_scheduling=StreamScheduling.FIFO),
        BrowserConfig(when_hours=snapshot.stamp.when_hours),
        policy,
    )
    metrics = engine.run()
    return policy, engine, metrics


class TestMultiDocumentHints:
    def test_iframe_responses_contribute_hints(self, page, snapshot, store):
        policy, _, metrics = run_with_policy(page, snapshot, store)
        iframe_urls = {
            doc.url for doc in snapshot.documents() if doc.parent
        }
        hinted_from_iframes = [
            timeline
            for timeline in metrics.timelines.values()
            if timeline.discovered_via == "hint"
            and timeline.discovered_from in iframe_urls
        ]
        if not iframe_urls:
            return
        # At least some iframe produced hints for its own subtree.
        assert hinted_from_iframes or all(
            len(snapshot.by_url()[url].children) == 0
            for url in iframe_urls
        )

    def test_hints_deduplicated_across_documents(self, page, snapshot, store):
        policy, engine, _ = run_with_policy(page, snapshot, store)
        # Every hinted URL appears exactly once in the stage buckets.
        all_hinted = [
            url
            for bucket in policy._hinted.values()
            for url in bucket
        ]
        assert len(all_hinted) == len(set(all_hinted))

    def test_no_url_fetched_twice(self, page, snapshot, store):
        _, engine, _ = run_with_policy(page, snapshot, store)
        served = sum(
            server.requests_served + server.pushes_sent
            for server in engine.client.servers.values()
        )
        assert served == len(engine.client.fetches)

    def test_extraneous_hints_never_block_onload(self, page, snapshot, store):
        _, _, metrics = run_with_policy(page, snapshot, store)
        unreferenced = [
            timeline
            for timeline in metrics.timelines.values()
            if not timeline.referenced
        ]
        if not unreferenced:
            return
        # Onload may precede the completion of wasted fetches.
        assert metrics.plt <= max(
            (t.fetched_at or 0) for t in unreferenced
        ) or all(
            (t.fetched_at or 0) <= metrics.plt for t in unreferenced
        )

    def test_wasted_bytes_accounted(self, page, snapshot, store):
        _, _, metrics = run_with_policy(page, snapshot, store)
        unreferenced_bytes = sum(
            timeline.size
            for timeline in metrics.timelines.values()
            if not timeline.referenced
        )
        # wasted_bytes counts response sizes of unreferenced fetches;
        # timeline.size is 0 for them (no snapshot resource), so instead
        # check the counter is consistent with fetch count.
        unreferenced_count = sum(
            1
            for timeline in metrics.timelines.values()
            if not timeline.referenced
        )
        if unreferenced_count:
            assert metrics.wasted_bytes > 0
        else:
            assert metrics.wasted_bytes == 0

"""Unit tests for offline dependency resolution (stable sets, devices)."""

import pytest

from repro.core.offline import (
    OfflineResolver,
    SERVER_USER,
    device_equivalence_classes,
)


class TestOfflineLoads:
    def test_window_size_and_spacing(self, page):
        resolver = OfflineResolver(page, period_hours=1.0, window_loads=3)
        loads = resolver.offline_loads(100.0, "phone")
        assert len(loads) == 3
        hours = [snap.stamp.when_hours for snap in loads]
        assert hours == [97.0, 98.0, 99.0]

    def test_loads_use_server_identity(self, page):
        resolver = OfflineResolver(page)
        loads = resolver.offline_loads(100.0, "phone")
        assert all(snap.stamp.user == SERVER_USER for snap in loads)

    def test_invalid_parameters(self, page):
        with pytest.raises(ValueError):
            OfflineResolver(page, period_hours=0.0)
        with pytest.raises(ValueError):
            OfflineResolver(page, window_loads=0)

    def test_unknown_device_class(self, page):
        resolver = OfflineResolver(page)
        with pytest.raises(ValueError):
            resolver.offline_loads(100.0, "smartwatch")


class TestStableSet:
    def test_stable_set_excludes_nonce_urls(self, page, stamp):
        resolver = OfflineResolver(page)
        stable = resolver.stable_set(stamp.when_hours, "phone")
        nonce_specs = {
            spec.name
            for spec in page.specs.values()
            if spec.unpredictable
        }
        stable_names = {
            exemplar.name for exemplar in stable.exemplars.values()
        }
        assert not (stable_names & nonce_specs)

    def test_stable_set_keeps_long_lived_resources(self, page, stamp):
        resolver = OfflineResolver(page)
        stable = resolver.stable_set(stamp.when_hours, "phone")
        long_lived = [
            spec
            for spec in page.specs.values()
            if spec.lifetime_hours is None
            and not spec.unpredictable
            and not spec.personalized
        ]
        stable_names = {
            exemplar.name for exemplar in stable.exemplars.values()
        }
        missing = [s.name for s in long_lived if s.name not in stable_names]
        assert not missing

    def test_stable_subset_of_latest_load(self, page, stamp):
        resolver = OfflineResolver(page)
        stable = resolver.stable_set(stamp.when_hours, "phone")
        latest = resolver.offline_loads(stamp.when_hours, "phone")[-1]
        assert stable.urls <= set(latest.urls())

    def test_cached_by_time_and_class(self, page, stamp):
        resolver = OfflineResolver(page)
        first = resolver.stable_set(stamp.when_hours, "phone")
        second = resolver.stable_set(stamp.when_hours, "phone")
        assert first is second
        tablet = resolver.stable_set(stamp.when_hours, "tablet")
        assert tablet is not first

    def test_single_prior_load_is_superset(self, page, stamp):
        resolver = OfflineResolver(page)
        stable = resolver.stable_set(stamp.when_hours, "phone")
        single = resolver.single_prior_load(stamp.when_hours, "phone")
        assert stable.urls <= single.urls

    def test_contains_and_len(self, page, stamp):
        resolver = OfflineResolver(page)
        stable = resolver.stable_set(stamp.when_hours, "phone")
        assert len(stable) == len(stable.urls)
        any_url = next(iter(stable.urls))
        assert any_url in stable


class TestDeviceClasses:
    def test_phones_bin_together(self, page, stamp):
        classes = device_equivalence_classes(
            page, ["nexus6", "oneplus3", "nexus10"], stamp.when_hours
        )
        phone_class = next(
            members for members in classes.values() if "nexus6" in members
        )
        assert "oneplus3" in phone_class
        assert "nexus10" not in phone_class

    def test_tablet_gets_own_class_on_device_heavy_page(self, corpus, stamp):
        device_heavy = max(
            corpus,
            key=lambda page: sum(
                1 for spec in page.specs.values() if spec.device_dependent
            ),
        )
        classes = device_equivalence_classes(
            device_heavy, ["nexus6", "nexus10"], stamp.when_hours
        )
        assert len(classes) == 2

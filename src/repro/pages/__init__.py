"""Synthetic web-page substrate.

A :class:`~repro.pages.page.PageBlueprint` describes a page's resource tree
with all of its sources of flux (content rotation, per-load nonces, device
variants, personalization).  Materialising a blueprint at a wall-clock time
for a (device, user) pair yields a :class:`~repro.pages.page.PageSnapshot`:
the concrete set of resources, URLs, bodies and dependency edges that one
particular load of the page would fetch.
"""

from repro.pages.resources import (
    Discovery,
    Priority,
    Resource,
    ResourceSpec,
    ResourceType,
    PROCESSABLE_TYPES,
    priority_of,
)
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint, PageSnapshot
from repro.pages.generator import PageGenerator, generate_page
from repro.pages.corpus import (
    accuracy_corpus,
    alexa_top100_corpus,
    alexa_top400_sample_corpus,
    news_sports_corpus,
)

__all__ = [
    "Discovery",
    "Priority",
    "Resource",
    "ResourceSpec",
    "ResourceType",
    "PROCESSABLE_TYPES",
    "priority_of",
    "LoadStamp",
    "PageBlueprint",
    "PageSnapshot",
    "PageGenerator",
    "generate_page",
    "accuracy_corpus",
    "alexa_top100_corpus",
    "alexa_top400_sample_corpus",
    "news_sports_corpus",
]

"""Resource persistence over time (paper Fig 7).

For each page, the fraction of the current load's resources that were
also present in a load N hours earlier.  The paper measures one hour, one
day and one week; the median page keeps ~70% over an hour and ~50% over a
week.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint

HORIZONS_HOURS: Dict[str, float] = {
    "one_hour": 1.0,
    "one_day": 24.0,
    "one_week": 24.0 * 7,
}


def persistence_fraction(
    page: PageBlueprint, stamp: LoadStamp, horizon_hours: float
) -> float:
    """Share of the current load's URLs present ``horizon_hours`` ago."""
    now_urls = set(page.materialize(stamp).urls())
    past_urls = set(page.materialize(stamp.earlier(horizon_hours)).urls())
    if not now_urls:
        return 1.0
    return len(now_urls & past_urls) / len(now_urls)


def persistence_distributions(
    pages: Iterable[PageBlueprint], stamp: LoadStamp
) -> Dict[str, List[float]]:
    """Per-horizon persistence fractions across a corpus."""
    out: Dict[str, List[float]] = {name: [] for name in HORIZONS_HOURS}
    for page in pages:
        for name, hours in HORIZONS_HOURS.items():
            out[name].append(persistence_fraction(page, stamp, hours))
    return out

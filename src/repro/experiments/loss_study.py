"""Packet-loss study (related work: "How Speedy is SPDY?", Erman et al.).

The paper's related-work section cites two findings about HTTP/2's
single-connection design: page dependencies limit its gains, and "the
use of a single TCP connection can be detrimental in the presence of
high packet loss"; it notes Vroom "can be used with HTTP/1.1 in the face
of high packet loss".  This experiment sweeps loss rates and compares:

* HTTP/1.1 (six connections per domain — loss on one barely dents the
  aggregate window),
* HTTP/2 (one connection per domain — every loss halves the only pipe),
* Vroom over HTTP/2, and Vroom's hint mechanism over HTTP/1.1 (no push,
  hints only, immediate fetching) — the fallback the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.browser.engine import BrowserConfig, load_page
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.core.push_policy import PushPolicy
from repro.core.scheduler import VroomScheduler
from repro.core.server import vroom_servers
from repro.net.http import HttpVersion, NetworkConfig
from repro.net.link import StreamScheduling
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.cache import materialize_cached
from repro.replay.replayer import build_servers

LOSS_RATES: Sequence[float] = (0.0, 0.01, 0.02)


def loss_sweep(
    count: int = 8,
    loss_rates: Sequence[float] = LOSS_RATES,
) -> Dict[float, Dict[str, List[float]]]:
    """PLT distributions per loss rate per configuration."""
    stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    out: Dict[float, Dict[str, List[float]]] = {}
    for loss in loss_rates:
        rows: Dict[str, List[float]] = {
            "http1": [], "http2": [], "vroom_h2": [], "vroom_h1": [],
        }
        for page in news_sports_corpus(count):
            # The snapshot is loss-independent: the session cache shares
            # one (snapshot, store) pair across all loss rates.
            snapshot, store = materialize_cached(page, stamp)
            browser = BrowserConfig(when_hours=stamp.when_hours)
            rows["http1"].append(
                load_page(
                    snapshot,
                    build_servers(store),
                    NetworkConfig(
                        version=HttpVersion.HTTP1, loss_rate=loss
                    ),
                    browser,
                ).plt
            )
            rows["http2"].append(
                load_page(
                    snapshot,
                    build_servers(store),
                    NetworkConfig(loss_rate=loss),
                    browser,
                ).plt
            )
            rows["vroom_h2"].append(
                load_page(
                    snapshot,
                    vroom_servers(page, snapshot, store),
                    NetworkConfig(
                        h2_scheduling=StreamScheduling.FIFO,
                        loss_rate=loss,
                    ),
                    browser,
                    policy=VroomScheduler(),
                ).plt
            )
            # Vroom's HTTP/1.1 fallback: hints only (no push exists in
            # HTTP/1.1), fetched by the staged scheduler.
            rows["vroom_h1"].append(
                load_page(
                    snapshot,
                    vroom_servers(
                        page, snapshot, store, push_policy=PushPolicy.NONE
                    ),
                    NetworkConfig(
                        version=HttpVersion.HTTP1, loss_rate=loss
                    ),
                    browser,
                    policy=VroomScheduler(),
                ).plt
            )
        out[loss] = rows
    return out

#!/usr/bin/env python3
"""Scenario: a news provider deciding whether to deploy Vroom.

The provider controls only its first-party domain; ad networks and CDNs
may or may not follow.  This script answers the questions the paper's
Sec 6.1 partial-adoption experiment answers:

1. How much does the provider gain if *only it* adopts Vroom?
2. How much more arrives once every domain adopts?
3. What does the server pay? (online HTML parse latency, hint bytes,
   extra offline loads)

Run:  python examples/provider_adoption_study.py [--workers N]
"""

import argparse
import statistics

from repro import LoadStamp, news_sports_corpus
from repro.core.offline import OfflineResolver
from repro.core.resolver import VroomResolver
from repro.experiments.parallel import run_sweep


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--workers", type=int, default=1,
        help="sweep worker processes (0 = one per CPU)",
    )
    args = parser.parse_args()

    pages = news_sports_corpus(count=8)
    stamp = LoadStamp(when_hours=1000.0)

    configs = ["http2", "vroom-first-party", "vroom"]
    run, perf = run_sweep(
        pages, configs, stamp=stamp, workers=args.workers
    )
    plts = {config: run.series(config) for config in configs}
    print(
        f"({perf.jobs} loads, {perf.workers} workers, "
        f"{perf.jobs_per_sec:.1f} loads/s)"
    )

    base = statistics.median(plts["http2"])
    partial = statistics.median(plts["vroom-first-party"])
    full = statistics.median(plts["vroom"])
    print("== Median PLT across 8 landing pages ==")
    print(f"plain HTTP/2 everywhere        : {base:5.2f} s")
    print(
        f"Vroom on first party only      : {partial:5.2f} s "
        f"({base - partial:+.2f} s)"
    )
    print(
        f"Vroom adopted by every domain  : {full:5.2f} s "
        f"({base - full:+.2f} s)"
    )

    # Server-side costs for one page.  The sweep above already
    # materialised this snapshot; the session cache hands it back.
    from repro.replay.cache import materialize_cached

    page = pages[0]
    snapshot, _ = materialize_cached(page, stamp)
    resolver = VroomResolver(page)
    bundle = resolver.hints_for(
        snapshot.root, as_of_hours=stamp.when_hours
    )
    offline = OfflineResolver(page)
    loads = offline.offline_loads(stamp.when_hours, "phone")
    print(f"\n== Server-side costs for {page.name!r} ==")
    print(f"hints attached to the root HTML : {len(bundle)} URLs")
    print(f"hint header overhead            : ~{len(bundle) * 80} bytes")
    print(
        f"offline loads per hour          : {len(loads)}-load window, "
        "one emulated load per device class per period"
    )
    print("online HTML parse overhead      : ~100 ms per HTML response")


if __name__ == "__main__":
    main()

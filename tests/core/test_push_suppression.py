"""Warm-cache push suppression: servers never push what clients hold.

Fig 20's methodology: "to prevent wasted bandwidth, resources that were
already cached at the client were not pushed by servers" (via the cache
summary of footnote 2).  The engine wires the cache into
``HttpClient.is_cached``; these tests pin the end-to-end behaviour.
"""

from repro.browser.cache import BrowserCache
from repro.browser.engine import BrowserConfig, PageLoadEngine
from repro.core.scheduler import VroomScheduler
from repro.core.server import vroom_servers
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling


def vroom_run(page, snapshot, store, cache=None):
    engine = PageLoadEngine(
        snapshot,
        vroom_servers(page, snapshot, store),
        NetworkConfig(h2_scheduling=StreamScheduling.FIFO),
        BrowserConfig(when_hours=snapshot.stamp.when_hours, cache=cache),
        VroomScheduler(),
    )
    metrics = engine.run()
    return engine, metrics


class TestPushSuppression:
    def test_cold_cache_pushes(self, page, snapshot, store):
        engine, _ = vroom_run(page, snapshot, store)
        total_pushes = sum(
            server.pushes_sent for server in engine.client.servers.values()
        )
        assert total_pushes > 0

    def test_warm_cache_suppresses_pushes(self, page, snapshot, store):
        cache = BrowserCache()
        cache.seed_from_snapshot(
            snapshot.all_resources(), when_hours=snapshot.stamp.when_hours
        )
        cold_engine, _ = vroom_run(page, snapshot, store)
        warm_engine, _ = vroom_run(page, snapshot, store, cache=cache)
        cold_pushes = sum(
            server.pushes_sent
            for server in cold_engine.client.servers.values()
        )
        warm_pushes = sum(
            server.pushes_sent
            for server in warm_engine.client.servers.values()
        )
        assert warm_pushes < cold_pushes

    def test_no_cached_url_is_pushed(self, page, snapshot, store):
        cache = BrowserCache()
        cache.seed_from_snapshot(
            snapshot.all_resources(), when_hours=snapshot.stamp.when_hours
        )
        engine, metrics = vroom_run(page, snapshot, store, cache=cache)
        for url, timeline in metrics.timelines.items():
            if timeline.pushed:
                assert not cache.has_fresh(
                    url, snapshot.stamp.when_hours
                ), url

    def test_warm_cache_fewer_bytes(self, page, snapshot, store):
        cache = BrowserCache()
        cache.seed_from_snapshot(
            snapshot.all_resources(), when_hours=snapshot.stamp.when_hours
        )
        _, cold = vroom_run(page, snapshot, store)
        _, warm = vroom_run(page, snapshot, store, cache=cache)
        assert warm.bytes_fetched < cold.bytes_fetched

"""Every AST rule is exercised by the fixture files.

``fixtures/positives.py`` tags each violating line with ``# expect:
CODE``; the tests here assert the scanner flags exactly those lines
with exactly those codes.  ``fixtures/negatives.py`` holds near-misses
that must never be flagged.
"""

import re
from pathlib import Path
from typing import Dict

from repro.devtools.astrules import scan_source
from repro.devtools.findings import RULES
from repro.devtools.runner import lint_package

FIXTURES = Path(__file__).parent / "fixtures"
_EXPECT = re.compile(r"#\s*expect:\s*([A-Z]+\d+)")

#: Rules raised by the single-module AST scanner.  LAY3xx comes from
#: the import-graph checker (test_layering.py); PERF4xx needs the call
#: graph (test_perf_rules.py); CFG6xx needs docs + CLI cross-checks
#: (test_drift_rules.py).  Together the four fixture suites must cover
#: the whole registry — test_registry_is_fully_fixture_covered below.
AST_RULES = {
    code
    for code in RULES
    if not code.startswith(("LAY", "PERF", "CFG"))
}


def _expectations(source: str) -> Dict[int, str]:
    """line number -> expected rule code, from ``# expect:`` markers."""
    out: Dict[int, str] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _EXPECT.search(text)
        if match:
            out[number] = match.group(1)
    return out


def _flagged(source: str, pure: bool) -> Dict[int, set]:
    findings = scan_source(source, "fixture.py", pure=pure)
    out: Dict[int, set] = {}
    for finding in findings:
        out.setdefault(finding.line, set()).add(finding.code)
    return out


def test_every_marked_line_is_flagged():
    source = (FIXTURES / "positives.py").read_text()
    expected = _expectations(source)
    flagged = _flagged(source, pure=True)
    missed = {
        line: code
        for line, code in expected.items()
        if code not in flagged.get(line, set())
    }
    assert not missed, f"rules failed to fire: {missed}"


def test_no_unmarked_line_is_flagged():
    source = (FIXTURES / "positives.py").read_text()
    expected = _expectations(source)
    flagged = _flagged(source, pure=True)
    spurious = {
        line: codes
        for line, codes in flagged.items()
        if line not in expected or codes != {expected[line]}
    }
    assert not spurious, f"unexpected findings: {spurious}"


def test_positive_fixture_covers_every_ast_rule():
    source = (FIXTURES / "positives.py").read_text()
    assert set(_expectations(source).values()) == AST_RULES


def test_registry_is_fully_fixture_covered():
    """Adding a rule to RULES without a fixture fails here, by family."""
    claimed = set(AST_RULES)
    claimed |= {code for code in RULES if code.startswith("LAY")}
    claimed |= {code for code in RULES if code.startswith("PERF")}
    claimed |= {code for code in RULES if code.startswith("CFG")}
    assert claimed == set(RULES), (
        "new rule family: give it a fixture suite and add its prefix "
        "to the split above"
    )


def test_negatives_are_never_flagged():
    source = (FIXTURES / "negatives.py").read_text()
    assert scan_source(source, "negatives.py", pure=True) == []


def test_purity_rules_relax_outside_pure_layers():
    """DET104/PUR201 apply only to sim layers; the rest always apply."""
    source = (FIXTURES / "positives.py").read_text()
    codes = {
        code for codes in _flagged(source, pure=False).values()
        for code in codes
    }
    assert "DET104" not in codes
    assert "PUR201" not in codes
    assert {"DET101", "DET102", "DET103", "DET105"} <= codes


def test_pragma_waives_the_named_rule(tmp_path):
    layer = tmp_path / "core"
    layer.mkdir()
    (layer / "mod.py").write_text(
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro: allow[DET104] fixture waiver\n"
    )
    report = lint_package(tmp_path)
    assert report.clean
    assert [finding.code for finding in report.waived] == ["DET104"]


def test_pragma_does_not_waive_other_rules(tmp_path):
    layer = tmp_path / "core"
    layer.mkdir()
    (layer / "mod.py").write_text(
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro: allow[PUR201] wrong code\n"
    )
    report = lint_package(tmp_path)
    assert [finding.code for finding in report.findings] == ["DET104"]
    assert not report.waived

"""Integration-grade unit tests for the page-load engine."""

import pytest

from repro.browser.cache import BrowserCache
from repro.browser.engine import (
    BrowserConfig,
    PageLoadEngine,
    load_page,
    network_priority,
)
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.pages.resources import Discovery, ResourceSpec, ResourceType
from repro.replay.recorder import record_snapshot
from repro.replay.replayer import build_servers

STAMP = LoadStamp(when_hours=50.0)


def spec(name, rtype, parent=None, **kw):
    return ResourceSpec(
        name=name,
        rtype=rtype,
        domain=kw.pop("domain", "a.com"),
        size=kw.pop("size", 20_000),
        parent=parent,
        **kw,
    )


def build_page(extra_specs=()):
    page = PageBlueprint(name="eng", root="root")
    page.add(spec("root", ResourceType.HTML, size=30_000))
    page.add(spec("css", ResourceType.CSS, "root", position=0.1))
    page.add(spec("sync_js", ResourceType.JS, "root", position=0.3))
    page.add(
        spec(
            "async_js",
            ResourceType.JS,
            "root",
            position=0.5,
            exec_async=True,
        )
    )
    page.add(spec("img", ResourceType.IMAGE, "root", position=0.7,
                  above_fold=True, pixel_weight=1.0))
    page.add(
        spec(
            "chain_js",
            ResourceType.JS,
            "sync_js",
            discovery=Discovery.SCRIPT_COMPUTED,
        )
    )
    page.add(
        spec(
            "chain_img",
            ResourceType.IMAGE,
            "chain_js",
            discovery=Discovery.SCRIPT_COMPUTED,
        )
    )
    page.add(
        spec(
            "font",
            ResourceType.FONT,
            "css",
            discovery=Discovery.CSS_REF,
        )
    )
    for extra in extra_specs:
        page.add(extra)
    page.validate()
    return page


def run_load(page, net_config=None, browser_config=None, policy=None):
    snapshot = page.materialize(STAMP)
    store = record_snapshot(snapshot)
    servers = build_servers(store)
    browser = browser_config or BrowserConfig(when_hours=STAMP.when_hours)
    metrics = load_page(snapshot, servers, net_config, browser, policy)
    return snapshot, metrics


class TestBasicLoad:
    def test_onload_fires(self):
        _, metrics = run_load(build_page())
        assert metrics.plt > 0

    def test_every_resource_fetched(self):
        snapshot, metrics = run_load(build_page())
        for resource in snapshot.all_resources():
            timeline = metrics.timelines[resource.url]
            assert timeline.fetched_at is not None, resource.name

    def test_processables_processed(self):
        snapshot, metrics = run_load(build_page())
        for resource in snapshot.all_resources():
            if resource.processable:
                timeline = metrics.timelines[resource.url]
                assert timeline.processed_at is not None, resource.name

    def test_plt_is_last_completion(self):
        _, metrics = run_load(build_page())
        last = max(
            timeline.completion_at
            for timeline in metrics.referenced_timelines()
        )
        assert metrics.plt == pytest.approx(last, abs=1e-6)

    def test_aft_at_most_plt(self):
        _, metrics = run_load(build_page())
        assert metrics.aft <= metrics.plt + 1e-9


class TestDiscoverySemantics:
    def test_static_children_via_scanner(self):
        snapshot, metrics = run_load(build_page())
        css = metrics.timelines[snapshot.find("css").url]
        assert css.discovered_via == "scanner"

    def test_script_children_after_parent_exec(self):
        snapshot, metrics = run_load(build_page())
        parent = metrics.timelines[snapshot.find("sync_js").url]
        child = metrics.timelines[snapshot.find("chain_js").url]
        assert child.discovered_via == "script"
        assert child.discovered_at >= parent.processed_at - 1e-9

    def test_css_ref_after_css_parse(self):
        snapshot, metrics = run_load(build_page())
        sheet = metrics.timelines[snapshot.find("css").url]
        font = metrics.timelines[snapshot.find("font").url]
        assert font.discovered_via == "css"
        assert font.discovered_at >= sheet.processed_at - 1e-9

    def test_chain_order_is_causal(self):
        snapshot, metrics = run_load(build_page())
        js = metrics.timelines[snapshot.find("chain_js").url]
        img = metrics.timelines[snapshot.find("chain_img").url]
        assert img.discovered_at >= js.processed_at - 1e-9

    def test_fetch_after_discovery(self):
        _, metrics = run_load(build_page())
        for timeline in metrics.referenced_timelines():
            assert timeline.fetch_started_at >= timeline.discovered_at - 1e-9

    def test_process_after_fetch(self):
        _, metrics = run_load(build_page())
        for timeline in metrics.referenced_timelines():
            if timeline.processed_at is not None:
                assert timeline.processed_at >= timeline.fetched_at - 1e-9


class TestBlockingSemantics:
    def test_sync_script_blocks_root_parse(self):
        """Root parse cannot finish before a sync script executes."""
        snapshot, metrics = run_load(build_page())
        root = metrics.timelines[snapshot.root.url]
        sync_js = metrics.timelines[snapshot.find("sync_js").url]
        assert root.processed_at >= sync_js.processed_at - 1e-9

    def test_sync_script_waits_for_earlier_css(self):
        snapshot, metrics = run_load(build_page())
        css = metrics.timelines[snapshot.find("css").url]
        sync_js = metrics.timelines[snapshot.find("sync_js").url]
        assert sync_js.processed_at >= css.processed_at - 1e-9

    def test_nonblocking_scripts_mode_unblocks_parse(self):
        """With Polaris-style non-blocking scripts, the root document's
        parse no longer waits for script execution."""
        snap_block, blocking = run_load(build_page())
        snap_free, nonblocking = run_load(
            build_page(),
            browser_config=BrowserConfig(
                when_hours=STAMP.when_hours, nonblocking_scripts=True
            ),
        )
        assert (
            nonblocking.timelines[snap_free.root.url].processed_at
            <= blocking.timelines[snap_block.root.url].processed_at + 1e-9
        )


class TestIframes:
    def _page_with_iframe(self):
        frame = spec(
            "frame",
            ResourceType.HTML,
            "root",
            position=0.8,
            domain="b.com",
            size=25_000,
        )
        framed = spec("framed_img", ResourceType.IMAGE, "frame", position=0.5)
        return build_page(extra_specs=[frame, framed])

    def test_iframe_content_loads(self):
        page = self._page_with_iframe()
        snapshot, metrics = run_load(page)
        framed = metrics.timelines[snapshot.find("framed_img").url]
        assert framed.fetched_at is not None

    def test_iframe_processed_after_root_parse(self):
        page = self._page_with_iframe()
        snapshot, metrics = run_load(page)
        root = metrics.timelines[snapshot.root.url]
        frame = metrics.timelines[snapshot.find("frame").url]
        assert frame.processed_at >= root.processed_at - 1e-9


class TestCacheBehaviour:
    def test_warm_cache_speeds_up(self):
        page = build_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)

        cold = load_page(
            snapshot,
            build_servers(store),
            browser_config=BrowserConfig(when_hours=STAMP.when_hours),
        )

        cache = BrowserCache()
        cache.seed_from_snapshot(
            snapshot.all_resources(), when_hours=STAMP.when_hours
        )
        warm = load_page(
            snapshot,
            build_servers(store),
            browser_config=BrowserConfig(
                when_hours=STAMP.when_hours, cache=cache
            ),
        )
        assert warm.plt < cold.plt

    def test_cached_resources_marked(self):
        page = build_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)
        cache = BrowserCache()
        cache.seed_from_snapshot(
            snapshot.all_resources(), when_hours=STAMP.when_hours
        )
        metrics = load_page(
            snapshot,
            build_servers(store),
            browser_config=BrowserConfig(
                when_hours=STAMP.when_hours, cache=cache
            ),
        )
        cached = [
            t for t in metrics.referenced_timelines() if t.from_cache
        ]
        assert cached

    def test_load_populates_cache(self):
        page = build_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)
        cache = BrowserCache()
        load_page(
            snapshot,
            build_servers(store),
            browser_config=BrowserConfig(
                when_hours=STAMP.when_hours, cache=cache
            ),
        )
        assert len(cache) > 0


class TestLowerBoundModes:
    def test_preknown_urls_discovers_everything_at_zero(self):
        page = build_page()
        snapshot, metrics = run_load(
            page,
            browser_config=BrowserConfig(
                when_hours=STAMP.when_hours,
                preknown_urls=True,
                cpu_scale=0.0,
            ),
        )
        assert metrics.discovery_complete_at() == 0.0

    def test_cpu_scale_zero_removes_processing_cost(self):
        page = build_page()
        normal = run_load(page)[1]
        free_cpu = run_load(
            page,
            browser_config=BrowserConfig(
                when_hours=STAMP.when_hours, cpu_scale=0.0
            ),
        )[1]
        assert free_cpu.plt < normal.plt
        assert free_cpu.cpu_busy_time == 0.0


class TestCookies:
    def test_cookies_never_leak_across_domains(self):
        page = build_page(
            extra_specs=[
                spec("tp_img", ResourceType.IMAGE, "root", domain="c.com",
                     position=0.9)
            ]
        )
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)
        engine = PageLoadEngine(
            snapshot,
            build_servers(store),
            browser_config=BrowserConfig(when_hours=STAMP.when_hours),
        )
        engine.run()
        assert not engine.cookies.leaked_across_domains()
        assert "c.com" in engine.cookies.domains_shared_with


class TestNetworkPriority:
    def test_priority_ordering(self, snapshot):
        root = snapshot.root
        assert network_priority(root) < network_priority(
            next(r for r in snapshot.all_resources() if r.rtype is ResourceType.CSS)
        )
        assert network_priority(None) == 5.0


class TestFailureModes:
    def test_wedged_load_raises_with_diagnostics(self):
        page = build_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)

        class StallingPolicy:
            def attach(self, engine):
                self.engine = engine

            def on_discovered(self, url, via):
                pass  # never fetch anything

            def on_headers(self, fetch):
                pass

            def on_fetched(self, url):
                pass

            def ensure_fetch(self, url):
                pass

        engine = PageLoadEngine(
            snapshot,
            build_servers(store),
            browser_config=BrowserConfig(when_hours=STAMP.when_hours),
            policy=StallingPolicy(),
        )
        with pytest.raises(RuntimeError, match="never fired onload"):
            engine.run(time_limit=30.0)


class TestScannerDrivers:
    """The preload-scanner drivers: reference poll vs demand-driven."""

    @staticmethod
    def _run_counting_documents(event_driven):
        from repro.net.http import NetworkConfig

        # The iframe's fetch starts only once the root parse reaches it,
        # so the scanner to-do list stays non-empty past t=0 and the
        # poll grid actually gets walked.
        page = build_page(
            extra_specs=[
                spec("frame", ResourceType.HTML, "root", position=0.9),
                spec("frame_img", ResourceType.IMAGE, "frame", position=0.5),
            ]
        )
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)
        calls = []
        original = snapshot.documents

        def counting():
            calls.append(None)
            return original()

        snapshot.documents = counting  # instance-level shadow
        engine = PageLoadEngine(
            snapshot,
            build_servers(store),
            NetworkConfig(event_driven_browser=event_driven),
            BrowserConfig(when_hours=STAMP.when_hours),
        )
        metrics = engine.run()
        return len(calls), metrics

    # Exactly two document-list builds per load: one when the scanner
    # driver hoists its to-do list, one when iframe parses start.  A
    # regression to per-tick rebuilding would show up as hundreds.

    def test_poll_loop_builds_document_list_once(self):
        """Regression: the reference 5 ms poll must hoist the document
        list — one resource-tree walk per load, not one per tick."""
        calls, metrics = self._run_counting_documents(event_driven=False)
        assert calls == 2
        # Sanity: the poll actually ran (many grid ticks on this page).
        assert metrics.engine_counters["browser_wakeups"] > 1

    def test_event_driven_builds_document_list_once(self):
        calls, metrics = self._run_counting_documents(event_driven=True)
        assert calls == 2
        assert metrics.engine_counters["scanner_polls_elided"] > 0

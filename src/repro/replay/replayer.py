"""Replaying: turn a ReplayStore into per-domain origin servers.

A *response decorator* lets policy layers (Vroom, push strawmen) enrich
plain recorded responses with dependency hints, push lists and extra server
think time without re-implementing the transport.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.calibration import SERVER_HTML_THINK_TIME, SERVER_THINK_TIME
from repro.net.origin import OriginServer, Response
from repro.replay.store import RecordedResponse, ReplayStore

#: Decorator signature: may mutate/replace the Response for an exchange.
ResponseDecorator = Callable[[RecordedResponse, Response, bool], Response]


def _plain_response(recorded: RecordedResponse) -> Response:
    think = SERVER_HTML_THINK_TIME if recorded.is_html else SERVER_THINK_TIME
    cacheable = True
    if recorded.resource is not None:
        cacheable = recorded.resource.spec.cacheable
        if recorded.resource.spec.server_think_time is not None:
            think = recorded.resource.spec.server_think_time
    return Response(
        url=recorded.url,
        size=recorded.size,
        think_time=think,
        meta=recorded.resource,
        cacheable=cacheable,
    )


def build_servers(
    store: ReplayStore,
    decorator: Optional[ResponseDecorator] = None,
    extra_content: Optional[Dict[str, RecordedResponse]] = None,
) -> Dict[str, OriginServer]:
    """One OriginServer per recorded domain.

    ``extra_content`` lets a policy layer serve URLs beyond the recorded
    set (e.g. stale offline-resolved dependencies that a client is hinted
    to fetch even though this load does not reference them).
    """
    extra_content = extra_content or {}

    def make_responder(domain: str):
        def respond(url: str, is_push: bool) -> Optional[Response]:
            recorded = store.lookup(url) or extra_content.get(url)
            if recorded is None or recorded.domain != domain:
                return None
            response = _plain_response(recorded)
            if decorator is not None:
                response = decorator(recorded, response, is_push)
            return response

        return respond

    servers: Dict[str, OriginServer] = {}
    domains = set(store.domains())
    domains.update(extra.domain for extra in extra_content.values())
    # Sorted so the server map (and everything downstream that iterates
    # it) is identical across PYTHONHASHSEED values.
    for domain in sorted(domains):
        rtt = store.domain_rtts.get(domain)
        if rtt is None:
            from repro.replay.recorder import domain_rtt

            rtt = domain_rtt(domain)
        servers[domain] = OriginServer(
            domain, make_responder(domain), server_rtt=rtt
        )
    return servers

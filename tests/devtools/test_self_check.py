"""The linter's verdict on this repository itself.

The baseline must be *exact*: no new findings, no stale entries, and a
real reason on every baselined violation.  This is the self-check the
issue's acceptance criteria call for — it keeps ``lint-baseline.json``
honest as the codebase grows.
"""

from pathlib import Path

from repro.devtools.baseline import Baseline
from repro.devtools.layering import check_layering
from repro.devtools.runner import lint_package

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / "lint-baseline.json"


def test_package_is_clean_against_the_checked_in_baseline():
    report = lint_package(PACKAGE_ROOT, Baseline.load(BASELINE_PATH))
    assert report.findings == [], report.render_human()
    assert report.stale == [], report.render_human()
    assert report.clean and report.exit_code == 0
    assert report.files_scanned > 50


def test_every_baseline_entry_is_explained():
    baseline = Baseline.load(BASELINE_PATH)
    assert baseline.entries, "baseline file missing or empty"
    for entry in baseline.entries:
        assert entry.reason.strip(), f"missing reason: {entry.key}"
        assert "TODO" not in entry.reason, f"unexplained entry: {entry.key}"


def test_layering_contract_holds_for_the_real_package():
    assert check_layering(PACKAGE_ROOT) == []

"""Fig 20: Vroom accelerates warm-cache loads too.

Paper median gains over HTTP/2: 1.6 s for back-to-back loads, 2.2 s a day
later, 2.1 s a week later (cached content is neither pushed nor refetched,
so gains persist as the cache decays).
"""

from benchmarks.conftest import run_once
from repro.experiments import figures


def test_fig20_warm_cache(benchmark, corpus_size):
    result = run_once(
        benchmark, figures.fig20_warm_cache, count=max(12, corpus_size // 2)
    )
    paper = {"b2b": 1.6, "1day": 2.2, "1week": 2.1}
    print("== Fig 20: warm-cache loads (median PLT quartiles) ==")
    for label, data in result.items():
        v = data["vroom"]
        h = data["http2"]
        print(
            f"{label:<6} vroom p25/50/75 = {v[0]:.2f}/{v[1]:.2f}/{v[2]:.2f}  "
            f"http2 = {h[0]:.2f}/{h[1]:.2f}/{h[2]:.2f}  "
            f"median gain = {data['median_gain'][0]:.2f}s "
            f"| paper ~{paper[label]:.1f}s"
        )
    for label in ("b2b", "1day", "1week"):
        assert result[label]["median_gain"][0] > 0.3, label
    # Staler caches leave more for Vroom to accelerate than b2b loads.
    assert result["1week"]["vroom"][1] >= result["b2b"]["vroom"][1] - 0.5

"""Synthetic markup bodies and the extraction parser.

Documents (HTML), stylesheets and scripts in a snapshot carry actual text
bodies so that *online HTML analysis* — the Vroom server parsing an HTML
response as it is served — is a real parse over real bytes rather than an
oracle.  The grammar is a deliberately small HTML subset:

* ``<link rel="stylesheet" href="URL">`` — CSS reference
* ``<script src="URL"></script>`` / ``<script async src="URL"></script>``
* ``<img src="URL">`` — images and other static media
* ``<iframe src="URL"></iframe>`` — embedded third-party documents
* filler text between tags

Script bodies reference their dynamically computed children inside string
literals assembled at run time, so a static parse cannot see them —
mirroring why online HTML analysis misses script-computed resources.
Stylesheet bodies use ``url(...)`` references.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Tuple

from repro.pages.resources import Discovery, Resource, ResourceType

_FILLER = (
    "lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod "
    "tempor incididunt ut labore et dolore magna aliqua "
)

_TAG_BY_TYPE = {
    ResourceType.CSS: '<link rel="stylesheet" href="{url}">',
    ResourceType.JS: '<script src="{url}"></script>',
    ResourceType.HTML: '<iframe src="{url}"></iframe>',
    ResourceType.IMAGE: '<img src="{url}">',
    ResourceType.FONT: '<img src="{url}">',
    ResourceType.VIDEO: '<video src="{url}"></video>',
    ResourceType.JSON: '<img src="{url}">',
    ResourceType.OTHER: '<img src="{url}">',
}

_ASYNC_SCRIPT_TAG = '<script async src="{url}"></script>'

#: Matches every URL-bearing tag the synthetic grammar can produce.
_TAG_RE = re.compile(
    r"<(?:link[^>]*?href|script[^>]*?src|img[^>]*?src|iframe[^>]*?src|"
    r"video[^>]*?src)=\"([^\"]+)\""
)

_CSS_URL_RE = re.compile(r"url\(([^)]+)\)")


def _pad(text: str, size: int) -> str:
    """Pad (or trim) ``text`` with filler so ``len(result) == size``."""
    if len(text) >= size:
        return text[:size]
    need = size - len(text)
    reps = need // len(_FILLER) + 1
    return text + (_FILLER * reps)[:need]


def render_document(doc: Resource, size: int) -> str:
    """Render an HTML body for ``doc`` with its static children embedded.

    Children declared ``STATIC_MARKUP`` get a tag at a byte offset matching
    their ``position``; script-computed and CSS-referenced children do not
    appear.  The body is padded with filler text to the requested size.
    """
    static_children = [
        child
        for child in doc.children
        if child.spec.discovery is Discovery.STATIC_MARKUP
    ]
    static_children.sort(key=lambda child: child.spec.position)

    parts: List[str] = ["<html><head>"]
    cursor = len(parts[0])
    for child in static_children:
        target = int(child.spec.position * max(size - 200, 1))
        if target > cursor:
            parts.append(_pad("", target - cursor))
            cursor = target
        template = _TAG_BY_TYPE[child.rtype]
        if child.rtype is ResourceType.JS and child.spec.exec_async:
            template = _ASYNC_SCRIPT_TAG
        tag = template.format(url=child.url)
        parts.append(tag)
        cursor += len(tag)
    parts.append("</html>")
    return _pad("".join(parts), size)


def render_script(script: Resource, size: int) -> str:
    """Render a JS body whose computed children are hidden from parsers.

    The child URL is split into fragments concatenated at run time, so a
    textual scan of the body never sees a complete URL.
    """
    lines = ["(function () {"]
    for child in script.children:
        if child.spec.discovery is Discovery.SCRIPT_COMPUTED:
            url = child.url
            mid = max(1, len(url) // 2)
            lines.append(
                f'  load("{url[:mid]}" + "{url[mid:]}");'
            )
    lines.append("})();")
    return _pad("\n".join(lines), size)


def render_stylesheet(sheet: Resource, size: int) -> str:
    """Render a CSS body with ``url(...)`` references to its children."""
    rules = ["body { margin: 0; }"]
    for child in sheet.children:
        if child.spec.discovery is Discovery.CSS_REF:
            rules.append(f".r {{ background: url({child.url}); }}")
    return _pad("\n".join(rules), size)


def render_body(resource: Resource) -> str:
    """Render the appropriate body for any processable resource."""
    if resource.rtype is ResourceType.HTML:
        return render_document(resource, resource.size)
    if resource.rtype is ResourceType.JS:
        return render_script(resource, resource.size)
    if resource.rtype is ResourceType.CSS:
        return render_stylesheet(resource, resource.size)
    return ""


def extract_urls(html_body: str) -> List[str]:
    """Statically extract every URL referenced by tags in an HTML body.

    This is the parse a Vroom-compliant server performs while serving an
    HTML response (Sec 4.1.2) and also what the browser's preload scanner
    sees.  Returns URLs in document order.
    """
    return _TAG_RE.findall(html_body)


def extract_urls_with_offsets(html_body: str) -> List[Tuple[str, int]]:
    """Like :func:`extract_urls` but with the byte offset of each tag end.

    The preload scanner can only discover a reference once the bytes
    containing the full tag have arrived, so offsets matter to the browser
    model.
    """
    return [
        (match.group(1), match.end())
        for match in _TAG_RE.finditer(html_body)
    ]


def extract_css_urls(css_body: str) -> List[str]:
    """Extract ``url(...)`` references from a stylesheet body."""
    return [url.strip() for url in _CSS_URL_RE.findall(css_body)]


def urls_visible_to_scanner(bodies: Iterable[str]) -> List[str]:
    """Union of statically visible URLs across several HTML bodies."""
    seen: List[str] = []
    for body in bodies:
        seen.extend(extract_urls(body))
    return seen

"""Lint orchestration: file walking, pragmas, reports.

``lint_package`` runs every rule family over a package tree, applies
inline pragmas and the baseline, and returns a :class:`LintReport` that
renders as human text or JSON (for CI).

Every module is read and parsed exactly **once** per run (and, via the
call-graph cache in :mod:`repro.devtools.callgraph`, once per tree
state across runs in the same process): the det/purity rules, the
layering checker, the PERF4xx hot-path pass and the CFG6xx drift pass
all share the same :class:`~repro.devtools.callgraph.ModuleInfo` list.

Rule families (``--only-family``) and individual codes (``--select``)
narrow a run; the baseline is narrowed with them, so selecting only
``PERF401`` never reports unrelated baseline entries as stale.

Inline suppression::

    value = risky_thing()  # repro: allow[DET105] reason for the waiver

waives the named rule(s) on that line only.  When the flagged line is
too long to carry the comment, put the pragma on a comment-only line
directly above — it waives the next code line.  Pragmas are for cases the
surrounding code explains; cross-cutting debt belongs in the baseline
file, where a ``reason`` is mandatory.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.devtools import callgraph
from repro.devtools.astrules import scan_tree
from repro.devtools.baseline import Baseline, BaselineEntry
from repro.devtools.driftrules import scan_config
from repro.devtools.findings import FAMILIES, RULES, Finding
from repro.devtools.layering import PURE_LAYERS, check_layering, layer_of
from repro.devtools.perfrules import scan_perf

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9_,\s]+)\]")


def _pragmas(source: str) -> Dict[int, frozenset]:
    """line number -> rule codes waived on that line.

    A pragma on a comment-only line waives the next code line instead
    (skipping further comment lines), so a long flagged statement can
    carry its waiver — and the reason — on the line above without
    breaking the line-length budget.
    """
    lines = source.splitlines()
    out: Dict[int, frozenset] = {}
    for number, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if not match:
            continue
        codes = frozenset(
            code.strip() for code in match.group(1).split(",")
        )
        target = number
        if text.lstrip().startswith("#"):
            for other in range(number + 1, len(lines) + 1):
                stripped = lines[other - 1].lstrip()
                if stripped and not stripped.startswith("#"):
                    target = other
                    break
        out[target] = out.get(target, frozenset()) | codes
    return out


@dataclass
class LintStats:
    """One run's cost, for the ``--stats`` line."""

    files: int = 0
    rules: int = 0
    findings_total: int = 0
    duration_s: float = 0.0
    callgraph_cached: bool = False
    hot_functions: int = 0

    def render(self) -> str:
        cache = "cached" if self.callgraph_cached else "built"
        return (
            f"stats: {self.files} file(s), {self.rules} rule(s), "
            f"{self.hot_functions} hot function(s) (call graph {cache}), "
            f"{self.findings_total} raw finding(s), "
            f"{self.duration_s * 1000.0:.0f} ms"
        )


@dataclass
class LintReport:
    """Outcome of one lint run."""

    #: Violations not covered by a pragma or the baseline: these fail CI.
    findings: List[Finding] = field(default_factory=list)
    #: Violations waived by an inline ``# repro: allow[...]`` pragma.
    waived: List[Finding] = field(default_factory=list)
    #: Violations matched by a baseline entry.
    suppressed: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing: the debt was paid, remove
    #: the entry.  These fail CI too, to keep the baseline exact.
    stale: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    stats: LintStats = field(default_factory=LintStats)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.stale

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def render_human(self, stats: bool = False) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.render())
        for entry in self.stale:
            lines.append(
                f"{entry.path}: stale baseline entry {entry.code} "
                f"({entry.message!r}) — the violation is gone; remove it"
            )
        lines.append(
            f"{len(self.findings)} finding(s), {len(self.stale)} stale "
            f"baseline entr(ies), {len(self.suppressed)} baselined, "
            f"{len(self.waived)} waived by pragma; "
            f"{self.files_scanned} file(s) scanned"
        )
        if stats:
            lines.append(self.stats.render())
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "findings": [finding.as_dict() for finding in self.findings],
            "stale_baseline": [entry.as_dict() for entry in self.stale],
            "summary": {
                "findings": len(self.findings),
                "stale_baseline": len(self.stale),
                "suppressed": len(self.suppressed),
                "waived": len(self.waived),
                "files_scanned": self.files_scanned,
                "clean": self.clean,
            },
            "stats": {
                "files": self.stats.files,
                "rules": self.stats.rules,
                "hot_functions": self.stats.hot_functions,
                "callgraph_cached": self.stats.callgraph_cached,
                "duration_s": round(self.stats.duration_s, 6),
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def _assign_occurrences(findings: List[Finding]) -> List[Finding]:
    """Number duplicate (path, code, message) findings in source order."""
    counts: Dict[Tuple[str, str, str], int] = {}
    out: List[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.code)):
        key = (finding.path, finding.code, finding.message)
        index = counts.get(key, 0)
        counts[key] = index + 1
        out.append(
            Finding(
                code=finding.code,
                path=finding.path,
                line=finding.line,
                message=finding.message,
                occurrence=index,
            )
        )
    return out


def resolve_selection(
    select: Optional[Iterable[str]] = None,
    families: Optional[Iterable[str]] = None,
) -> Set[str]:
    """The set of rule codes a run covers.

    ``select`` names codes or code prefixes (``PERF``, ``PERF401``);
    ``families`` names rule families (``det``, ``layering``, ``perf``,
    ``config``).  Both given: the intersection.  Neither: every rule.
    Unknown names raise ``ValueError`` so typos fail loudly instead of
    silently linting nothing.
    """
    codes: Set[str] = set(RULES)
    if families is not None:
        chosen: Set[str] = set()
        for family in families:
            if family not in FAMILIES:
                raise ValueError(
                    f"unknown rule family {family!r} "
                    f"(families: {', '.join(sorted(FAMILIES))})"
                )
            chosen.update(
                code
                for code in RULES
                if code.startswith(FAMILIES[family])
            )
        codes &= chosen
    if select is not None:
        chosen = set()
        for pattern in select:
            matched = {code for code in RULES if code.startswith(pattern)}
            if not matched:
                raise ValueError(
                    f"--select {pattern!r} matches no known rule"
                )
            chosen.update(matched)
        codes &= chosen
    return codes


def _default_docs_text(package_root: Path) -> Optional[str]:
    """docs/API.md relative to the conventional src/<pkg> layout."""
    docs = package_root.parent.parent / "docs" / "API.md"
    if docs.is_file():
        return docs.read_text()
    return None


def lint_package(
    package_root: Path,
    baseline: Optional[Baseline] = None,
    package: str = "repro",
    select: Optional[Iterable[str]] = None,
    families: Optional[Iterable[str]] = None,
    docs_text: Optional[str] = None,
) -> LintReport:
    """Lint every ``*.py`` under ``package_root`` (a package directory).

    Finding paths are posix-relative to ``package_root``; layer purity
    and the layering DAG are derived from the first path segment.
    ``docs_text`` overrides the content of ``docs/API.md`` for the
    CFG6xx pass (default: read from ``<root>/../../docs/API.md`` when
    present, else the docs-side checks are skipped).
    """
    started = time.perf_counter()
    package_root = Path(package_root)
    codes = resolve_selection(select, families)
    report = LintReport()

    modules, graph = callgraph.cached_project(package_root, package)
    report.files_scanned = len(modules)

    raw: List[Finding] = []
    if any(code.startswith(("DET", "PUR")) for code in codes):
        for info in modules:
            raw.extend(
                scan_tree(
                    info.tree,
                    info.path,
                    pure=layer_of(Path(info.path)) in PURE_LAYERS,
                )
            )
    if any(code.startswith("PERF") for code in codes):
        raw.extend(scan_perf(modules, graph))
    if any(code.startswith("CFG") for code in codes):
        if docs_text is None:
            docs_text = _default_docs_text(package_root)
        raw.extend(scan_config(modules, docs_text))
    if any(code.startswith("LAY") for code in codes):
        raw.extend(check_layering(package_root, package, modules=modules))

    raw = [finding for finding in raw if finding.code in codes]

    # Inline pragma waivers, against the shared per-module sources.
    pragmas_by_path = {
        info.path: _pragmas(info.source) for info in modules
    }
    kept: List[Finding] = []
    for finding in raw:
        waivers = pragmas_by_path.get(finding.path, {})
        waived_codes = waivers.get(finding.line)
        if waived_codes is not None and (
            finding.code in waived_codes or "ALL" in waived_codes
        ):
            report.waived.append(finding)
        else:
            kept.append(finding)

    numbered = _assign_occurrences(kept)
    # Narrow the baseline to the selected codes: a PERF-only run must
    # not report DET/PUR baseline entries as stale.
    full = baseline or Baseline()
    narrowed = Baseline(
        entries=[entry for entry in full.entries if entry.code in codes]
    )
    new, suppressed, stale = narrowed.partition(numbered)
    report.findings = new
    report.suppressed = suppressed
    report.stale = stale
    report.stats = LintStats(
        files=len(modules),
        rules=len(codes),
        findings_total=len(raw),
        duration_s=time.perf_counter() - started,
        callgraph_cached=callgraph.LAST_CACHE_HIT,
        hot_functions=len(graph.hot),
    )
    return report

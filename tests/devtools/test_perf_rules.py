"""PERF4xx rules over the ``fixtures/perfpkg`` call-graph fixture.

Mirrors test_lint_rules.py's marker contract: every ``# expect: CODE``
line must be flagged with exactly that code, nothing else may fire —
including the deliberately cold functions that repeat the same
patterns outside the hot region.
"""

import re
from pathlib import Path
from typing import Dict, Tuple

from repro.devtools.callgraph import build_call_graph, parse_package
from repro.devtools.findings import RULES
from repro.devtools.perfrules import scan_perf

PERFPKG = Path(__file__).parent / "fixtures" / "perfpkg"
_EXPECT = re.compile(r"#\s*expect:\s*([A-Z]+\d+)")


def _scan() -> Tuple[Dict[Tuple[str, int], str], Dict[Tuple[str, int], set]]:
    """(path, line) -> expected code / flagged codes, package-wide."""
    modules = parse_package(PERFPKG, package="perfpkg")
    graph = build_call_graph(modules, package="perfpkg")
    expected: Dict[Tuple[str, int], str] = {}
    for info in modules:
        for number, text in enumerate(info.source.splitlines(), start=1):
            match = _EXPECT.search(text)
            if match:
                expected[(info.path, number)] = match.group(1)
    flagged: Dict[Tuple[str, int], set] = {}
    for finding in scan_perf(modules, graph):
        flagged.setdefault((finding.path, finding.line), set()).add(
            finding.code
        )
    return expected, flagged


def test_every_marked_line_is_flagged():
    expected, flagged = _scan()
    missed = {
        site: code
        for site, code in expected.items()
        if code not in flagged.get(site, set())
    }
    assert not missed, f"rules failed to fire: {missed}"


def test_no_unmarked_line_is_flagged():
    expected, flagged = _scan()
    spurious = {
        site: codes
        for site, codes in flagged.items()
        if site not in expected or codes != {expected[site]}
    }
    assert not spurious, f"unexpected findings: {spurious}"


def test_fixture_covers_every_perf_rule():
    expected, _ = _scan()
    perf_rules = {code for code in RULES if code.startswith("PERF")}
    assert set(expected.values()) == perf_rules


def test_cold_functions_stay_silent():
    """The allocation patterns only matter inside the hot region."""
    modules = parse_package(PERFPKG, package="perfpkg")
    graph = build_call_graph(modules, package="perfpkg")
    assert not graph.is_hot("perfpkg.engine:cold_path")
    assert not graph.is_hot("perfpkg.helper:cold_helper")
    cold_lines = set()
    for info in modules:
        for number, text in enumerate(info.source.splitlines(), start=1):
            if "cold" in text:
                cold_lines.add((info.path, number))
    flagged_sites = {
        (finding.path, finding.line)
        for finding in scan_perf(modules, graph)
    }
    assert not flagged_sites & cold_lines


def test_findings_carry_the_hot_chain():
    modules = parse_package(PERFPKG, package="perfpkg")
    graph = build_call_graph(modules, package="perfpkg")
    messages = [finding.message for finding in scan_perf(modules, graph)]
    assert any("seeded by # repro: hotpath" in message for message in messages)
    assert any("called from tick" in message for message in messages)

"""Unit tests for the browser cache."""

from repro.browser.cache import BrowserCache


class TestBasics:
    def test_fresh_hit(self):
        cache = BrowserCache()
        cache.store("a.com/x.js", 100, when_hours=10.0, max_age_hours=24.0)
        assert cache.lookup("a.com/x.js", 20.0) is not None
        assert cache.hits == 1

    def test_expired_entry_misses(self):
        cache = BrowserCache()
        cache.store("a.com/x.js", 100, when_hours=10.0, max_age_hours=5.0)
        assert cache.lookup("a.com/x.js", 16.0) is None
        assert cache.misses == 1

    def test_boundary_age_is_fresh(self):
        cache = BrowserCache()
        cache.store("a.com/x.js", 100, when_hours=0.0, max_age_hours=24.0)
        assert cache.has_fresh("a.com/x.js", 24.0)

    def test_future_store_not_fresh(self):
        """An entry 'from the future' never matches (clock sanity)."""
        cache = BrowserCache()
        cache.store("a.com/x.js", 100, when_hours=50.0, max_age_hours=24.0)
        assert not cache.has_fresh("a.com/x.js", 10.0)

    def test_uncacheable_not_stored(self):
        cache = BrowserCache()
        cache.store(
            "a.com/x.js", 100, when_hours=0.0, max_age_hours=24.0,
            cacheable=False,
        )
        assert "a.com/x.js" not in cache

    def test_zero_max_age_not_stored(self):
        cache = BrowserCache()
        cache.store("a.com/x.js", 100, when_hours=0.0, max_age_hours=0.0)
        assert len(cache) == 0

    def test_overwrite_refreshes(self):
        cache = BrowserCache()
        cache.store("a.com/x.js", 100, when_hours=0.0, max_age_hours=1.0)
        cache.store("a.com/x.js", 100, when_hours=10.0, max_age_hours=1.0)
        assert cache.has_fresh("a.com/x.js", 10.5)


class TestSeeding:
    def test_seed_from_snapshot(self, snapshot, stamp):
        cache = BrowserCache()
        stored = cache.seed_from_snapshot(
            snapshot.all_resources(), when_hours=stamp.when_hours
        )
        cacheable = sum(
            1
            for resource in snapshot.all_resources()
            if resource.spec.cacheable
        )
        assert stored == cacheable
        assert len(cache) <= stored  # URL collisions only ever shrink it

    def test_fresh_urls_filters_by_time(self):
        cache = BrowserCache()
        cache.store("short.com/x", 1, when_hours=0.0, max_age_hours=1.0)
        cache.store("long.com/y", 1, when_hours=0.0, max_age_hours=100.0)
        fresh = cache.fresh_urls(50.0)
        assert "long.com/y" in fresh
        assert "short.com/x" not in fresh

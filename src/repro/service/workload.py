"""Seeded service workload: Zipf page popularity × Poisson arrivals.

Web request traffic is classically modelled as a Poisson arrival
process over a Zipf-distributed object popularity ("few pages take most
of the traffic"), and both halves matter to a hint store: Zipf skew
decides what stays resident under LRU, Poisson clumping decides queue
depth at the shards.

Everything draws from one ``random.Random(seed)`` instance in a fixed
order, so a workload is a pure function of its parameters: the same
seed yields the same lookup sequence no matter the store or budget
configuration — which is what lets the staleness experiment vary the
crawl budget against *identical* traffic.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class Lookup:
    """One hint request arriving at the service front door."""

    seq: int
    when_hours: float
    page_index: int
    device_class: str
    user: str


class ZipfPopularity:
    """Zipf(s) sampler over ``n`` ranks via inverse-CDF + bisect.

    Rank 0 is the most popular page.  ``weight(r) ∝ (r + 1) ** -s``;
    ``s = 0`` degenerates to uniform.
    """

    def __init__(self, n: int, exponent: float = 1.1):
        if n < 1:
            raise ValueError("need at least one page")
        if exponent < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        cumulative: List[float] = []
        total = 0.0
        for rank in range(n):
            total += (rank + 1) ** -exponent
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def weight(self, rank: int) -> float:
        return (rank + 1) ** -self.exponent / self._total

    def sample(self, uniform: float) -> int:
        """Rank for a uniform draw in [0, 1)."""
        return bisect_left(self._cumulative, uniform * self._total)


@dataclass(frozen=True)
class WorkloadConfig:
    """Traffic shape knobs."""

    pages: int
    lookups: int
    #: Mean arrival rate (lookups per simulated hour).
    rate_per_hour: float = 20_000.0
    zipf_exponent: float = 1.1
    #: Share of requests from the phone device class (rest: tablet).
    phone_fraction: float = 0.85
    #: Distinct client identities cycled through the traffic.
    user_pool: int = 32
    seed: int = 0


class Workload:
    """Deterministic lookup stream; iterate to drain it."""

    def __init__(self, config: WorkloadConfig):
        if config.lookups < 1:
            raise ValueError("workload needs at least one lookup")
        if config.rate_per_hour <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= config.phone_fraction <= 1.0:
            raise ValueError("phone fraction must be within [0, 1]")
        self.config = config
        self.popularity = ZipfPopularity(config.pages, config.zipf_exponent)

    def __iter__(self) -> Iterator[Lookup]:
        config = self.config
        rng = random.Random(config.seed)
        mean_gap = 1.0 / config.rate_per_hour
        now = 0.0
        for seq in range(config.lookups):
            now += rng.expovariate(1.0 / mean_gap)
            page_index = self.popularity.sample(rng.random())
            device_class = (
                "phone" if rng.random() < config.phone_fraction else "tablet"
            )
            user = f"user{rng.randrange(config.user_pool)}"
            yield Lookup(
                seq=seq,
                when_hours=now,
                page_index=page_index,
                device_class=device_class,
                user=user,
            )

    def duration_hours(self) -> float:
        """Arrival time of the last lookup (replays the gap draws)."""
        config = self.config
        rng = random.Random(config.seed)
        mean_gap = 1.0 / config.rate_per_hour
        now = 0.0
        for _ in range(config.lookups):
            now += rng.expovariate(1.0 / mean_gap)
            rng.random()
            rng.random()
            rng.randrange(config.user_pool)
        return now

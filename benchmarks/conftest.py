"""Benchmark harness conventions.

Every ``test_figNN_*`` benchmark regenerates one of the paper's figures or
tables on a reproduction-scale corpus and prints the measured series next
to the values the paper reports.  Absolute numbers come from a simulator,
not the authors' testbed, so the claims under test are the *shapes*:
orderings, rough ratios and crossovers.

Run with::

    pytest benchmarks/ --benchmark-only

Each experiment executes exactly once (``pedantic`` with one round); the
benchmark timing is the experiment's wall time, which doubles as a
regression guard on simulator performance.
"""

import pytest


#: Pages per corpus for benchmark runs.  The paper uses 100 News+Sports
#: pages and 265 accuracy pages; these defaults keep a full benchmark
#: session within a few minutes while preserving the distribution shapes.
BENCH_CORPUS_SIZE = 24
BENCH_ACCURACY_SIZE = 40


@pytest.fixture(scope="session")
def corpus_size():
    return BENCH_CORPUS_SIZE


@pytest.fixture(scope="session")
def accuracy_size():
    return BENCH_ACCURACY_SIZE


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )

"""A Polaris-style baseline (Netravali et al., NSDI 2016).

Polaris ships the client a fine-grained dependency graph measured from a
prior load and uses it to *reprioritise* requests for critical resources.
As the paper under reproduction stresses (Secs 2 and 6.1), the client still
discovers every resource on its own — fetching a resource, evaluating it,
and only then learning about its children — so chain latency survives;
what improves is the ordering of competing fetches: resources that lead to
longer dependency chains go first.

Our model: build the dependency graph from a prior (1-hour-old) load,
compute each node's downstream chain weight, and use it to assign network
priorities when discovered resources are fetched.  URLs the prior load did
not contain fall back to type-based priorities.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.browser.engine import (
    BrowserConfig,
    FetchPolicy,
    load_page,
    network_priority,
)
from repro.browser.metrics import LoadMetrics
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling
from repro.net.origin import OriginServer
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint, PageSnapshot
from repro.pages.resources import Resource


def chain_weights(snapshot: PageSnapshot) -> Dict[str, float]:
    """URL -> length (in CPU cost) of the longest chain below it."""
    weights: Dict[str, float] = {}

    def weight(resource: Resource) -> float:
        cached = weights.get(resource.url)
        if cached is not None:
            return cached
        own = resource.size if resource.processable else 0
        below = max(
            (weight(child) for child in resource.children), default=0.0
        )
        result = own + below
        weights[resource.url] = result
        return result

    weight(snapshot.root)
    return weights


def prior_load_weights(
    page: PageBlueprint, stamp: LoadStamp, age_hours: float = 1.0
) -> Dict[str, float]:
    """Chain weights measured from a load ``age_hours`` earlier.

    Weights are keyed by *spec name* so they survive URL churn — Polaris's
    graphs capture the page's stable structure, not exact URLs.
    """
    prior = page.materialize(stamp.earlier(age_hours))
    by_url = prior.by_url()
    url_weights = chain_weights(prior)
    return {
        by_url[url].name: value for url, value in url_weights.items()
    }


class PolarisScheduler(FetchPolicy):
    """Fetch-on-discovery with chain-weight-derived priorities."""

    def __init__(self, name_weights: Dict[str, float]):
        self.name_weights = name_weights
        self._max_weight = max(name_weights.values(), default=1.0) or 1.0

    def _priority(self, url: str) -> float:
        resource = self.engine.snapshot_urls.get(url)
        base = network_priority(resource)
        if resource is None:
            return base
        weight = self.name_weights.get(resource.name)
        if weight is None:
            return base
        # Scale into [0.3, 4.3]: heavier chains fetch first.
        return 0.3 + 4.0 * (1.0 - weight / self._max_weight)

    def on_discovered(self, url: str, via: str) -> None:
        self.engine.start_fetch(url, priority=self._priority(url))

    def ensure_fetch(self, url: str) -> None:
        self.engine.start_fetch(url, priority=self._priority(url))


def polaris_load(
    page: PageBlueprint,
    snapshot: PageSnapshot,
    servers: Dict[str, OriginServer],
    net_config: Optional[NetworkConfig] = None,
    browser_config: Optional[BrowserConfig] = None,
) -> LoadMetrics:
    """One page load under the Polaris baseline."""
    weights = prior_load_weights(page, snapshot.stamp)
    config = net_config or NetworkConfig(
        h2_scheduling=StreamScheduling.WEIGHTED
    )
    browser = browser_config or BrowserConfig(
        when_hours=snapshot.stamp.when_hours,
        # Scout's fine-grained read/write sets let Polaris evaluate safe
        # scripts without stalling the HTML parser.
        nonblocking_scripts=True,
    )
    return load_page(
        snapshot, servers, config, browser, policy=PolarisScheduler(weights)
    )

"""Load metrics: PLT, above-the-fold time, Speed Index, critical path.

The paper reports page load time (navigation start to ``onload``),
above-the-fold time (last render of content visible without scrolling) and
Speed Index (how quickly visible content converges), plus the fraction of
the load's critical path spent waiting on the network (Fig 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pages.resources import Priority, Resource


@dataclass
class ResourceTimeline:
    """Per-resource event times within one page load (seconds from start)."""

    url: str
    resource: Optional[Resource] = None
    size: int = 0
    priority: Optional[Priority] = None
    discovered_at: Optional[float] = None
    discovered_via: str = ""
    #: The resource whose processing/arrival revealed this one (None=root).
    discovered_from: Optional[str] = None
    fetch_started_at: Optional[float] = None
    headers_at: Optional[float] = None
    fetched_at: Optional[float] = None
    processed_at: Optional[float] = None
    rendered_at: Optional[float] = None
    from_cache: bool = False
    pushed: bool = False
    #: At least one fetch of this URL failed terminally (all retries
    #: exhausted).  A later refetch may still succeed — ``fetched_at``
    #: records the recovery if so.
    failed: bool = False
    #: True when the page actually references this URL (false for
    #: extraneous hint fetches — server false positives).
    referenced: bool = True

    @property
    def completion_at(self) -> Optional[float]:
        times = [
            value
            for value in (self.fetched_at, self.processed_at, self.rendered_at)
            if value is not None
        ]
        return max(times) if times else None

    @property
    def network_time(self) -> float:
        if self.fetch_started_at is None or self.fetched_at is None:
            return 0.0
        return self.fetched_at - self.fetch_started_at


@dataclass
class LoadMetrics:
    """Aggregate outcome of one simulated page load."""

    page: str
    plt: float
    aft: float
    speed_index: float
    onload_at: float
    cpu_busy_time: float
    bytes_fetched: float
    wasted_bytes: float
    #: Seconds the access link spent delivering bytes during the load.
    link_busy_time: float = 0.0
    #: Downlink capacity of the access link (bits per second).
    link_capacity_bps: float = 0.0
    #: Resilience counters (all zero on a fault-free load): request
    #: re-dispatches, per-attempt deadline expiries, mid-body connection
    #: drops, injected 5xx responses, terminal fetch failures, and bytes
    #: delivered for attempts that ultimately failed.
    retries: int = 0
    timeouts: int = 0
    connection_drops: int = 0
    error_responses: int = 0
    failed_fetches: int = 0
    fault_wasted_bytes: float = 0.0
    timelines: Dict[str, ResourceTimeline] = field(default_factory=dict)
    critical_path: List["CriticalHop"] = field(default_factory=list)
    #: Optional (time, cpu_busy, active_streams) samples; populated when
    #: ``BrowserConfig.sample_interval`` is positive.
    utilization_trace: List[Tuple[float, bool, int]] = field(
        default_factory=list
    )
    #: Deterministic engine perf counters (heap events scheduled/executed/
    #: cancelled, link pokes, fast-forward steps, rate recomputes).
    #: Excluded from equality: the fast-forward and event-per-tick engines
    #: produce identical *results* but intentionally different counters,
    #: and the equivalence suite compares metrics with ``==``.
    engine_counters: Dict[str, int] = field(default_factory=dict, compare=False)

    @property
    def network_wait_fraction(self) -> float:
        """Share of the critical path spent waiting for the network."""
        total = sum(hop.duration for hop in self.critical_path)
        if total <= 0:
            return 0.0
        network = sum(
            hop.duration for hop in self.critical_path if hop.kind == "network"
        )
        return network / total

    @property
    def cpu_utilization(self) -> float:
        """Fraction of the load the renderer CPU spent busy."""
        if self.plt <= 0:
            return 0.0
        return min(1.0, self.cpu_busy_time / self.plt)

    @property
    def link_active_fraction(self) -> float:
        """Fraction of the load with at least one stream receiving."""
        if self.plt <= 0:
            return 0.0
        return min(1.0, self.link_busy_time / self.plt)

    @property
    def link_utilization(self) -> float:
        """Delivered throughput as a fraction of downlink capacity."""
        if self.plt <= 0 or self.link_capacity_bps <= 0:
            return 0.0
        achieved = self.bytes_fetched * 8.0 / self.plt
        return min(1.0, achieved / self.link_capacity_bps)

    def referenced_timelines(self) -> List[ResourceTimeline]:
        return [
            timeline
            for timeline in self.timelines.values()
            if timeline.referenced
        ]

    def discovery_complete_at(self, high_priority_only: bool = False) -> float:
        """When the client knew about every (high-priority) resource."""
        times = [
            timeline.discovered_at
            for timeline in self.referenced_timelines()
            if timeline.discovered_at is not None
            and (
                not high_priority_only
                or timeline.priority is Priority.PRELOAD
            )
        ]
        return max(times) if times else 0.0

    def fetch_complete_at(self, high_priority_only: bool = False) -> float:
        """When the client finished downloading every such resource."""
        times = [
            timeline.fetched_at
            for timeline in self.referenced_timelines()
            if timeline.fetched_at is not None
            and (
                not high_priority_only
                or timeline.priority is Priority.PRELOAD
            )
        ]
        return max(times) if times else 0.0


@dataclass
class CriticalHop:
    """One segment of the reconstructed critical path."""

    url: str
    kind: str  # "network" | "cpu"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


def reconstruct_critical_path(
    timelines: Dict[str, ResourceTimeline], onload_at: float
) -> List[CriticalHop]:
    """Walk back from the last-finishing resource through discovery causes.

    Each hop on the chain is split into a network interval (fetch start to
    last byte) and CPU/queue intervals (everything else between the causal
    events).  The approximation matches how WProf-style analyses attribute
    critical-path time.
    """
    finished = [
        timeline
        for timeline in timelines.values()
        if timeline.referenced and timeline.completion_at is not None
    ]
    if not finished:
        return []
    current: Optional[ResourceTimeline] = max(
        finished, key=lambda timeline: timeline.completion_at or 0.0
    )
    hops: List[CriticalHop] = []
    guard = 0
    while current is not None and guard < 10_000:
        guard += 1
        completion = current.completion_at or 0.0
        fetch_start = (
            current.fetch_started_at
            if current.fetch_started_at is not None
            else completion
        )
        fetched = current.fetched_at if current.fetched_at is not None else completion
        if completion > fetched:
            hops.append(CriticalHop(current.url, "cpu", fetched, completion))
        if fetched > fetch_start:
            hops.append(
                CriticalHop(current.url, "network", fetch_start, fetched)
            )
        discovered = (
            current.discovered_at
            if current.discovered_at is not None
            else fetch_start
        )
        if fetch_start > discovered:
            hops.append(
                CriticalHop(current.url, "cpu", discovered, fetch_start)
            )
        parent_url = current.discovered_from
        parent = timelines.get(parent_url) if parent_url else None
        if parent is None:
            if discovered > 0:
                hops.append(CriticalHop(current.url, "cpu", 0.0, discovered))
            break
        anchor = parent.completion_at or 0.0
        anchor = min(anchor, discovered)
        if discovered > anchor:
            hops.append(CriticalHop(current.url, "cpu", anchor, discovered))
        current = parent
    hops.reverse()
    return hops


def speed_index(
    render_events: List[Tuple[float, float]], horizon: float
) -> float:
    """Speed Index in milliseconds.

    ``render_events`` are (time, pixel_weight) pairs for above-the-fold
    content becoming visible; ``horizon`` is the time by which the viewport
    is final (the AFT).  SI integrates (1 - visual completeness) over time.
    """
    total_weight = sum(weight for _, weight in render_events)
    if total_weight <= 0 or horizon <= 0:
        return horizon * 1000.0
    events = sorted(render_events)
    area = 0.0
    completeness = 0.0
    last_time = 0.0
    for time, weight in events:
        time = min(time, horizon)
        area += (1.0 - completeness) * (time - last_time)
        completeness += weight / total_weight
        last_time = time
    area += (1.0 - min(1.0, completeness)) * max(0.0, horizon - last_time)
    return area * 1000.0

"""Unit tests for the interprocedural call graph (repro.devtools.callgraph)."""

from pathlib import Path

from repro.devtools import callgraph
from repro.devtools.callgraph import (
    build_call_graph,
    cached_project,
    parse_package,
)


def _graph(tmp_path: Path, files: dict, package: str = "pkg"):
    root = tmp_path / package
    root.mkdir()
    (root / "__init__.py").write_text("")
    for name, source in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return build_call_graph(parse_package(root, package), package)


def test_pragma_seeds_on_line_above_and_on_def_line(tmp_path):
    graph = _graph(tmp_path, {"mod.py": (
        "# repro: hotpath\n"
        "def above():\n"
        "    pass\n"
        "def online():  # repro: hotpath\n"
        "    pass\n"
        "def unmarked():\n"
        "    pass\n"
    )})
    assert graph.hot["pkg.mod:above"] == "seeded by # repro: hotpath"
    assert graph.is_hot("pkg.mod:online")
    assert not graph.is_hot("pkg.mod:unmarked")


def test_cycles_terminate_and_stay_hot(tmp_path):
    graph = _graph(tmp_path, {"mod.py": (
        "# repro: hotpath\n"
        "def ping():\n"
        "    pong()\n"
        "def pong():\n"
        "    ping()\n"
    )})
    assert graph.is_hot("pkg.mod:ping")
    assert graph.hot["pkg.mod:pong"] == "called from ping"


def test_hotness_crosses_module_boundaries(tmp_path):
    graph = _graph(tmp_path, {
        "a.py": (
            "from pkg.b import worker\n"
            "# repro: hotpath\n"
            "def entry():\n"
            "    worker()\n"
        ),
        "b.py": (
            "def worker():\n"
            "    helper()\n"
            "def helper():\n"
            "    pass\n"
        ),
    })
    assert graph.hot["pkg.b:worker"] == "called from entry"
    assert graph.hot["pkg.b:helper"] == "called from worker"


def test_self_method_and_constructor_edges(tmp_path):
    graph = _graph(tmp_path, {"mod.py": (
        "class Widget:\n"
        "    def __init__(self):\n"
        "        self.size = 0\n"
        "# repro: hotpath\n"
        "class Engine:\n"
        "    pass\n"
        "class Runner:\n"
        "    # repro: hotpath\n"
        "    def step(self):\n"
        "        self.helper()\n"
        "    def helper(self):\n"
        "        return Widget()\n"
    )})
    assert graph.hot["pkg.mod:Runner.helper"] == "called from Runner.step"
    assert graph.is_hot("pkg.mod:Widget.__init__")


def test_dynamic_dispatch_falls_back_to_every_method_of_that_name(tmp_path):
    graph = _graph(tmp_path, {"mod.py": (
        "class Alpha:\n"
        "    def process(self):\n"
        "        pass\n"
        "    def get(self, key):\n"
        "        pass\n"
        "class Beta:\n"
        "    def process(self):\n"
        "        pass\n"
        "# repro: hotpath\n"
        "def run_all(handler, mapping):\n"
        "    handler.process()\n"
        "    mapping.get('key')\n"
    )})
    # Unknown receiver: both ``process`` methods heat up...
    assert graph.is_hot("pkg.mod:Alpha.process")
    assert graph.is_hot("pkg.mod:Beta.process")
    # ...but ubiquitous container-method names never dispatch.
    assert not graph.is_hot("pkg.mod:Alpha.get")


def test_dunder_methods_never_dispatch(tmp_path):
    """``super().__init__`` must not heat every constructor around."""
    graph = _graph(tmp_path, {"mod.py": (
        "class Unrelated:\n"
        "    def __init__(self):\n"
        "        self.size = 0\n"
        "class Base:\n"
        "    def __init__(self):\n"
        "        self.kind = 'base'\n"
        "class Child(Base):\n"
        "    # repro: hotpath\n"
        "    def __init__(self):\n"
        "        super().__init__()\n"
    )})
    assert not graph.is_hot("pkg.mod:Unrelated.__init__")


def test_exception_constructors_stay_cold(tmp_path):
    graph = _graph(tmp_path, {"mod.py": (
        "class BoomError(RuntimeError):\n"
        "    def __init__(self, detail):\n"
        "        super().__init__(detail)\n"
        "        self.detail = detail\n"
        "# repro: hotpath\n"
        "def hot():\n"
        "    raise BoomError('x')\n"
    )})
    assert not graph.is_hot("pkg.mod:BoomError.__init__")
    assert graph.classes["pkg.mod:BoomError"].is_exception


def test_hot_functions_returns_only_scannable_bodies(tmp_path):
    graph = _graph(tmp_path, {"mod.py": (
        "class Bare:\n"
        "    pass\n"
        "# repro: hotpath\n"
        "def hot():\n"
        "    return Bare()\n"
    )})
    # ``Bare()`` heats the bare class qualname (no explicit __init__);
    # hot_functions() must still return only real function bodies.
    assert graph.is_hot("pkg.mod:Bare")
    names = {fn.qualname for fn in graph.hot_functions()}
    assert names == {"pkg.mod:hot"}


def test_slots_detection_via_assign_and_dataclass_kw(tmp_path):
    graph = _graph(tmp_path, {"mod.py": (
        "from dataclasses import dataclass\n"
        "class Plain:\n"
        "    pass\n"
        "class Slotted:\n"
        "    __slots__ = ('a',)\n"
        "@dataclass(slots=True)\n"
        "class Record:\n"
        "    a: int = 0\n"
        "@dataclass\n"
        "class Loose:\n"
        "    a: int = 0\n"
    )})
    assert not graph.classes["pkg.mod:Plain"].has_slots
    assert graph.classes["pkg.mod:Slotted"].has_slots
    assert graph.classes["pkg.mod:Record"].has_slots
    assert not graph.classes["pkg.mod:Loose"].has_slots


def test_cached_project_hits_until_the_tree_changes(tmp_path):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    (root / "mod.py").write_text("def f():\n    pass\n")
    cached_project(root, "pkg")
    assert callgraph.LAST_CACHE_HIT is False
    cached_project(root, "pkg")
    assert callgraph.LAST_CACHE_HIT is True
    (root / "mod.py").write_text("def f():\n    return 1\n")
    modules, graph = cached_project(root, "pkg")
    assert callgraph.LAST_CACHE_HIT is False
    assert "pkg.mod:f" in graph.functions
    assert len(modules) == 2

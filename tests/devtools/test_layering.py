"""Import-graph layering checker over synthetic package trees."""

from pathlib import Path

from repro.devtools.layering import (
    LAYER_DEPS,
    PURE_LAYERS,
    check_layering,
    layer_of,
)


def _make(root: Path, relative: str, text: str) -> None:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def test_layer_of_maps_paths():
    assert layer_of(Path("net/link.py")) == "net"
    assert layer_of(Path("core/scheduler.py")) == "core"
    assert layer_of(Path("__init__.py")) == "root"
    assert layer_of(Path("__main__.py")) == "main"
    assert layer_of(Path("audit.py")) == "audit"
    assert layer_of(Path("cli.py")) == "cli"


def test_sim_importing_harness_is_rejected(tmp_path):
    """The acceptance case: net code must never import experiments."""
    _make(tmp_path, "net/link.py",
          "from repro.experiments.sweeps import run_sweep\n")
    _make(tmp_path, "experiments/sweeps.py",
          "def run_sweep():\n    return None\n")
    findings = check_layering(tmp_path)
    assert [finding.code for finding in findings] == ["LAY301"]
    assert findings[0].path == "net/link.py"
    assert findings[0].line == 1
    assert "experiments" in findings[0].message


def test_allowed_edges_pass(tmp_path):
    _make(tmp_path, "core/scheduler.py", "from repro.net.link import X\n")
    _make(tmp_path, "net/link.py", "from repro import audit\n")
    _make(tmp_path, "audit.py", "ENABLED = False\n")
    _make(tmp_path, "cli.py", "from repro.experiments.sweeps import run\n")
    _make(tmp_path, "experiments/sweeps.py", "def run():\n    pass\n")
    assert check_layering(tmp_path) == []


def test_from_package_import_targets_the_submodule(tmp_path):
    """``from repro import audit`` is an audit-layer edge, not a facade
    import — layer 0 is reachable from everywhere in the sim DAG."""
    _make(tmp_path, "net/sim.py", "from repro import audit\n")
    _make(tmp_path, "audit.py", "ENABLED = False\n")
    assert check_layering(tmp_path) == []


def test_facade_may_import_everything(tmp_path):
    _make(tmp_path, "__init__.py", "from repro.cli import main\n")
    _make(tmp_path, "cli.py", "def main():\n    return 0\n")
    assert check_layering(tmp_path) == []


def test_devtools_may_not_import_sim_layers(tmp_path):
    _make(tmp_path, "devtools/probe.py", "import repro.net.link\n")
    _make(tmp_path, "net/link.py", "X = 1\n")
    findings = check_layering(tmp_path)
    assert [finding.code for finding in findings] == ["LAY301"]
    assert findings[0].path == "devtools/probe.py"


def test_cycle_is_reported(tmp_path):
    _make(tmp_path, "net/a.py", "import repro.pages.b\n")
    _make(tmp_path, "pages/b.py", "import repro.net.a\n")
    codes = [finding.code for finding in check_layering(tmp_path)]
    assert "LAY302" in codes
    cycle = next(
        finding
        for finding in check_layering(tmp_path)
        if finding.code == "LAY302"
    )
    assert "net" in cycle.message and "pages" in cycle.message


def test_unregistered_layer_is_an_error(tmp_path):
    _make(tmp_path, "mystery/mod.py", "from repro.net.link import X\n")
    _make(tmp_path, "net/link.py", "X = 1\n")
    findings = check_layering(tmp_path)
    assert [finding.code for finding in findings] == ["LAY301"]
    assert "unregistered" in findings[0].message


def test_dag_contract_is_acyclic_and_pure_layers_are_sim_only():
    """The declared contract itself stays sane as layers are added."""
    for layer, allowed in LAYER_DEPS.items():
        for target in allowed:
            assert layer not in LAYER_DEPS.get(target, frozenset()), (
                f"LAYER_DEPS declares a cycle: {layer} <-> {target}"
            )
    for harness in ("analysis", "experiments", "cli", "devtools"):
        assert harness not in PURE_LAYERS
    for sim in ("net", "pages", "browser", "replay", "core", "baselines"):
        assert sim in PURE_LAYERS

"""Client CPU cost model and the single-threaded processing queue.

Mobile page loads are CPU-bound (paper Sec 2), so the renderer is modelled
as one serial processor: at any instant it runs at most one task (HTML
parse segment, script execution, CSS parse, image decode, layout).  Costs
are per-byte by resource type, scaled by a device speed multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.calibration import (
    CPU_CSS_PARSE_PER_BYTE,
    CPU_HTML_PARSE_PER_BYTE,
    CPU_IMAGE_DECODE_PER_BYTE,
    CPU_JS_EXEC_PER_BYTE,
    CPU_LAYOUT_TIME,
    CPU_PER_RESOURCE_OVERHEAD,
    DEVICE_CPU_SPEEDUP,
)
from repro.net.simulator import SimulatorLike
from repro.pages.resources import ResourceType


@dataclass(frozen=True)
class CpuProfile:
    """Per-device CPU speed; derives task durations from byte counts."""

    device: str
    speedup: float = 1.0

    def _scale(self, seconds: float) -> float:
        return seconds / self.speedup

    def html_parse_time(self, nbytes: float) -> float:
        return self._scale(nbytes * CPU_HTML_PARSE_PER_BYTE)

    def js_exec_time(self, nbytes: float) -> float:
        return self._scale(
            nbytes * CPU_JS_EXEC_PER_BYTE + CPU_PER_RESOURCE_OVERHEAD
        )

    def css_parse_time(self, nbytes: float) -> float:
        return self._scale(
            nbytes * CPU_CSS_PARSE_PER_BYTE + CPU_PER_RESOURCE_OVERHEAD
        )

    def decode_time(self, nbytes: float) -> float:
        return self._scale(
            nbytes * CPU_IMAGE_DECODE_PER_BYTE + CPU_PER_RESOURCE_OVERHEAD / 4
        )

    def layout_time(self) -> float:
        return self._scale(CPU_LAYOUT_TIME)

    def process_time(self, rtype: ResourceType, nbytes: float) -> float:
        """Processing cost of a whole resource of the given type."""
        if rtype is ResourceType.HTML:
            return self.html_parse_time(nbytes)
        if rtype is ResourceType.JS:
            return self.js_exec_time(nbytes)
        if rtype is ResourceType.CSS:
            return self.css_parse_time(nbytes)
        return self.decode_time(nbytes)


DEVICE_PROFILES = {
    name: CpuProfile(device=name, speedup=speedup)
    for name, speedup in DEVICE_CPU_SPEEDUP.items()
}


#: CPU priority bands: the parser runs whenever it has bytes; opportunistic
#: work (arrival-driven script execution, CSS parse) fills its stalls;
#: deferrable work (decode bookkeeping) runs last.
BAND_PARSER = 0
BAND_EXEC = 1
BAND_DEFER = 2


class CpuQueue:
    """Serial task executor with three priority bands.

    Parser-driven work preempts queued (not running) arrival-driven work,
    matching renderer scheduling: the parser never starves behind
    opportunistic script execution.  Tasks are not preemptible once
    started — a renderer's run-to-completion event loop.
    """

    def __init__(self, sim: SimulatorLike):
        self.sim = sim
        self._bands: List[List[Tuple[float, Callable[[], None]]]] = [
            [], [], [],
        ]
        self._busy_until: Optional[float] = None
        #: Accumulated busy seconds (CPU utilisation accounting).
        self.busy_time = 0.0
        #: Callbacks run whenever the CPU goes idle (Vroom's JS scheduler
        #: can only react when the main thread is free).
        self.idle_waiters: List[Callable[[], None]] = []

    @property
    def busy(self) -> bool:
        return self._busy_until is not None and self._busy_until > self.sim.now

    @property
    def _high(self):  # compatibility for introspection in tests
        return self._bands[BAND_PARSER] + self._bands[BAND_EXEC]

    @property
    def _low(self):
        return self._bands[BAND_DEFER]

    def submit(
        self,
        duration: float,
        on_done: Callable[[], None],
        *,
        low_priority: bool = False,
        band: Optional[int] = None,
    ) -> None:
        """Queue a task of ``duration`` CPU-seconds, then call ``on_done``."""
        if duration < 0:
            raise ValueError("task duration must be non-negative")
        if band is None:
            band = BAND_DEFER if low_priority else BAND_EXEC
        self._bands[band].append((duration, on_done))
        self._kick()

    def when_idle(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` the next time the CPU has nothing queued."""
        if not self.busy and not self._high and not self._low:
            self.sim.call_soon(callback)
        else:
            self.idle_waiters.append(callback)

    def between_tasks(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` at the next task boundary.

        The renderer's event loop yields between tasks, so a JavaScript
        handler (like Vroom's response_handler) runs once the *current*
        task finishes — it does not wait for the whole queue to drain.
        """
        if not self.busy:
            self.sim.call_soon(callback)
        else:
            self.sim.schedule_at(self._busy_until or self.sim.now, callback)

    def _kick(self) -> None:
        if self.busy:
            return
        for band in self._bands:
            if band:
                duration, on_done = band.pop(0)
                break
        else:
            waiters, self.idle_waiters = self.idle_waiters, []
            for callback in waiters:
                self.sim.call_soon(callback)
            return
        self._busy_until = self.sim.now + duration
        self.busy_time += duration

        def finish() -> None:
            self._busy_until = None
            on_done()
            self._kick()

        self.sim.schedule_drop(duration, finish)

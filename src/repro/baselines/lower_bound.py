"""Lower bounds on page load time (paper Sec 2, Fig 2).

The paper estimates how fast a page *could* load if exactly one of the two
client resources were the bottleneck:

* **Network-bound**: the root HTML is rewritten to list every resource so
  the browser fetches everything but evaluates nothing; the load runs over
  the real LTE link.  We reproduce it with ``preknown_urls`` (everything
  discovered at navigation) and ``cpu_scale=0``.
* **CPU-bound**: the phone is connected over USB to a desktop hosting all
  web servers — latency is microscopic and bandwidth is huge, but the full
  protocol stack and all client-side processing remain.

The per-page lower bound is the max of the two.
"""

from __future__ import annotations

from typing import Dict

from repro.browser.engine import BrowserConfig, load_page
from repro.browser.metrics import LoadMetrics
from repro.net.http import NetworkConfig
from repro.net.origin import OriginServer
from repro.pages.page import PageSnapshot

#: The USB link to the desktop in the paper's CPU-bound setup.
USB_RTT: float = 0.002
USB_DOWNLINK_BPS: float = 300.0e6
USB_UPLINK_BPS: float = 100.0e6


def network_bound_load(
    snapshot: PageSnapshot,
    servers: Dict[str, OriginServer],
    net_config: NetworkConfig = None,
    when_hours: float = 0.0,
    device: str = "nexus6",
) -> LoadMetrics:
    """Fetch-everything/evaluate-nothing load over the real access link."""
    config = net_config or NetworkConfig()
    browser = BrowserConfig(
        device=device,
        when_hours=when_hours,
        cpu_scale=0.0,
        preknown_urls=True,
    )
    return load_page(snapshot, servers, config, browser)


def cpu_bound_load(
    snapshot: PageSnapshot,
    servers: Dict[str, OriginServer],
    when_hours: float = 0.0,
    device: str = "nexus6",
) -> LoadMetrics:
    """Normal load with all servers one USB hop away."""
    config = NetworkConfig(
        base_rtt=USB_RTT,
        downlink_bps=USB_DOWNLINK_BPS,
        uplink_bps=USB_UPLINK_BPS,
    )
    # The desktop hosts every server locally: no per-domain WAN RTT.
    local_servers = {
        domain: OriginServer(domain, server.responder, server_rtt=0.0)
        for domain, server in servers.items()
    }
    browser = BrowserConfig(device=device, when_hours=when_hours)
    return load_page(snapshot, local_servers, config, browser)


def lower_bound(
    snapshot: PageSnapshot,
    servers_factory,
    when_hours: float = 0.0,
    device: str = "nexus6",
) -> float:
    """max(CPU-bound, network-bound) PLT for one page.

    ``servers_factory`` builds a fresh server dict per load (server state
    is per-simulation and cannot be shared across runs).
    """
    cpu = cpu_bound_load(
        snapshot, servers_factory(), when_hours=when_hours, device=device
    )
    net = network_bound_load(
        snapshot, servers_factory(), when_hours=when_hours, device=device
    )
    return max(cpu.plt, net.plt)

"""PYTHONHASHSEED regression guard.

A simulation result may never depend on the process's string-hash seed.
Each case below runs the same probe in fresh interpreters under three
different ``PYTHONHASHSEED`` values and asserts bit-identical output.
This is the regression net behind the determinism fixes (stable_nonce
replacing builtin ``hash()`` in the offline/online resolvers) and the
DET1xx lint rules.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

_PROBE = """
import json

from repro.baselines.configs import run_config
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.core.offline import OfflineResolver
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp, stable_nonce
from repro.replay.recorder import record_snapshot

page = news_sports_corpus(count=2)[0]
stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
snapshot = page.materialize(stamp)
store = record_snapshot(snapshot)

resolver = OfflineResolver(page)
offline = resolver.offline_loads(DEFAULT_EVAL_HOUR, "phone")
stable = resolver.stable_set(DEFAULT_EVAL_HOUR)

metrics = run_config("vroom", page, snapshot, store)

payload = {
    "nonce_probe": [stable_nonce("page", index) for index in range(4)],
    "offline_nonces": [snap.stamp.nonce for snap in offline],
    "stable_urls": sorted(stable.urls),
    "plt": metrics.plt,
    "aft": metrics.aft,
    "speed_index": metrics.speed_index,
    "bytes_fetched": metrics.bytes_fetched,
    "fetch_insertion_order": list(metrics.timelines),
}
print(json.dumps(payload, sort_keys=True))
"""


def _run_probe(seed: int) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(seed)
    env["PYTHONPATH"] = str(SRC)
    result = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        check=True,
    )
    return json.loads(result.stdout)


@pytest.fixture(scope="module")
def probes():
    return {seed: _run_probe(seed) for seed in (0, 1, 2)}


def test_probe_is_hashseed_independent(probes):
    baseline = probes[0]
    for seed, payload in probes.items():
        assert payload == baseline, (
            f"PYTHONHASHSEED={seed} diverged from seed 0"
        )


def test_nonces_are_stable_and_distinct(probes):
    nonces = probes[0]["nonce_probe"]
    assert len(set(nonces)) == len(nonces)
    offline = probes[0]["offline_nonces"]
    assert len(set(offline)) == len(offline)


def test_fetch_order_is_populated(probes):
    """The strongest signal: the per-load fetch insertion order (a dict's
    insertion order, easily poisoned by set iteration upstream) agrees
    across seeds and actually contains the page's resources."""
    order = probes[0]["fetch_insertion_order"]
    assert len(order) > 5
    assert len(set(order)) == len(order)

"""Tests for JSON/HAR export."""

import json

from repro.analysis.export import har_like, metrics_to_dict, timeline_to_dict
from repro.baselines.configs import run_config


class TestMetricsExport:
    def test_round_trips_through_json(self, page, snapshot, store):
        metrics = run_config("vroom", page, snapshot, store)
        data = metrics_to_dict(metrics)
        text = json.dumps(data)
        parsed = json.loads(text)
        assert parsed["page"] == page.name
        assert parsed["plt"] == metrics.plt
        assert len(parsed["resources"]) == len(metrics.timelines)

    def test_without_timelines(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        data = metrics_to_dict(metrics, include_timelines=False)
        assert "resources" not in data
        assert data["network_wait_fraction"] >= 0

    def test_timeline_fields(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        timeline = metrics.timelines[snapshot.root.url]
        data = timeline_to_dict(timeline)
        assert data["type"] == "html"
        assert data["discovered_via"] == "navigation"
        assert data["referenced"] is True

    def test_critical_path_serialised(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        data = metrics_to_dict(metrics, include_timelines=False)
        assert data["critical_path"]
        for hop in data["critical_path"]:
            assert hop["kind"] in ("network", "cpu")
            assert hop["end"] >= hop["start"]


class TestHarExport:
    def test_har_structure(self, page, snapshot, store):
        metrics = run_config("vroom", page, snapshot, store)
        har = har_like(metrics)
        assert har["log"]["version"] == "1.2"
        assert har["log"]["pages"][0]["id"] == page.name
        assert har["log"]["entries"]

    def test_entries_sorted_by_start(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        entries = har_like(metrics)["log"]["entries"]
        starts = [entry["startedDateTime"] for entry in entries]
        assert starts == sorted(starts)

    def test_timings_non_negative_or_sentinel(self, page, snapshot, store):
        metrics = run_config("vroom", page, snapshot, store)
        for entry in har_like(metrics)["log"]["entries"]:
            for value in entry["timings"].values():
                assert value >= 0 or value == -1.0

    def test_pushed_entries_flagged(self, page, snapshot, store):
        metrics = run_config("vroom", page, snapshot, store)
        entries = har_like(metrics)["log"]["entries"]
        assert any(entry["response"]["pushed"] for entry in entries)

    def test_json_serialisable(self, page, snapshot, store):
        metrics = run_config("vroom", page, snapshot, store)
        json.dumps(har_like(metrics))  # must not raise

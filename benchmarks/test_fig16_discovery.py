"""Fig 16: latency to discover and to finish fetching resources.

Paper medians vs HTTP/2: discovery of all resources improves 22% (high
priority only: 16%); completion of all fetches improves 22% (high priority
only: 12%).
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments import figures
from repro.experiments.report import print_figure


def test_fig16_discovery_fetch(benchmark, corpus_size):
    series = run_once(
        benchmark, figures.fig16_discovery_fetch, count=corpus_size
    )
    print_figure(
        "Fig 16: relative improvement over HTTP/2 (positive = faster)",
        series,
        paper_values={
            "discovery_all": 0.22,
            "discovery_high": 0.16,
            "fetch_all": 0.22,
            "fetch_high": 0.12,
        },
    )
    assert median(series["discovery_all"]) > 0.05
    assert median(series["fetch_all"]) > 0.05
    assert median(series["discovery_high"]) > 0.0

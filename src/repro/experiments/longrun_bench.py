"""Long-horizon continuous-operation benchmark (``BENCH_longrun.json``).

Drives the :mod:`repro.longrun` streaming runner through the acceptance
scenario — at least 48 simulated hours of Zipf×Poisson traffic with the
shard fail/heal cycle active and content rotating under the corpus
epoch model — and packages three results:

* the straight-through report (windowed rollups, constant-memory
  aggregates, the served-hint chain);
* a checkpoint/resume round trip whose resumed report must be
  bit-identical (by fingerprint) to the straight run;
* a paired A/B lane (replication 2 vs 1 by default) over the identical
  workload stream, reported as per-window deltas.

``smoke_run``/``smoke_check`` follow the repo's pinned-golden pattern:
CI runs ``repro longrun --smoke`` under ``REPRO_AUDIT=1`` and any drift
in the serving stream shows up as a loud counter diff.
"""

from __future__ import annotations

import resource
import time
from typing import Dict, List, Optional

from repro.longrun import checkpoint_roundtrip, run_paired
from repro.scenario.spec import ScenarioSpec

#: The acceptance scenario: two simulated days of default-rate traffic,
#: a shard knocked out (and healed) every 12 hours, digest-aware hint
#: filtering on, hourly rollups.
DEFAULT_SPEC = ScenarioSpec(
    horizon_hours=48.0,
    digest_filter_bits=8,
    shard_cycle_every_hours=12.0,
    shard_cycle_down_hours=1.5,
    shard_cycle_start_hours=6.0,
)

#: Default B-lane policy: drop replication to 1 so the paired deltas
#: show what the replicas buy during the fail/heal windows.
DEFAULT_VARIANT = {"replication": 1}


def _slim_lane(lane: dict) -> dict:
    """An A/B lane without its bulky full report (rollups, tenants)."""
    report = lane["report"]
    return {
        "label": lane["label"],
        "overrides": lane["overrides"],
        "totals": report["totals"],
        "latency": report["latency"],
        "chain": report["chain"],
        "fingerprint": report["fingerprint"],
    }


def longrun_benchmark(
    spec: Optional[ScenarioSpec] = None,
    checkpoint_at_hours: Optional[float] = None,
    variant: Optional[Dict[str, object]] = None,
) -> dict:
    """Straight run + checkpoint/resume + paired A/B, one payload."""
    spec = DEFAULT_SPEC if spec is None else spec
    variant = dict(DEFAULT_VARIANT if variant is None else variant)

    wall = time.perf_counter()
    resume = checkpoint_roundtrip(spec, checkpoint_at_hours)
    resume_wall = time.perf_counter() - wall
    report = resume.pop("report")

    wall = time.perf_counter()
    paired = run_paired(spec, {}, variant, label_a="base", label_b="variant")
    ab_wall = time.perf_counter() - wall

    lookups = report["totals"]["lookups"]
    return {
        "benchmark": "longrun",
        "spec": spec.as_dict(),
        "spec_fingerprint": spec.fingerprint(),
        "report": report,
        "resume": resume,
        "ab": {
            "lane_a": _slim_lane(paired["lane_a"]),
            "lane_b": _slim_lane(paired["lane_b"]),
            "stream_identical": paired["stream_identical"],
            "windows": paired["windows"],
            "summary": paired["summary"],
        },
        "perf": {
            "resume_wall_s": round(resume_wall, 3),
            "ab_wall_s": round(ab_wall, 3),
            "lookups_per_s": round(lookups / resume_wall, 1)
            if resume_wall > 0
            else 0.0,
            "peak_rss_kb": resource.getrusage(
                resource.RUSAGE_SELF
            ).ru_maxrss,
        },
    }


#: Smoke scenario: small and fast (a few seconds), but it still crosses
#: four shard fail/heal windows, several content-rotation epochs, and a
#: mid-horizon checkpoint, so the pinned counters cover every moving
#: part of the harness.
SMOKE_SPEC = ScenarioSpec(
    pages=6,
    horizon_hours=3.0,
    rate_per_hour=400.0,
    shards=4,
    shard_memory_bytes=128 * 1024,
    digest_filter_bits=8,
    shard_cycle_every_hours=1.0,
    shard_cycle_down_hours=0.25,
    shard_cycle_start_hours=0.5,
    rollup_hours=0.5,
)

#: Golden counters for :data:`SMOKE_SPEC` (asserted by ``--smoke``).
#: ``chain`` hashes every served hint set in arrival order, so any
#: change to workload draws, store behaviour, fault timing, resolver
#: output, or digest filtering lands here.
EXPECTED_SMOKE: Dict[str, object] = {
    "lookups": 1205,
    "hits": 1109,
    "stale_hits": 96,
    "misses": 0,
    "unavailable": 0,
    "failovers": 78,
    "shard_wipes": 3,
    "windows": 6,
    "digest_filtered_lookups": 1018,
    "chain": "24ba18bbabfcf12dba3cc4e42cca456eea15a61d",
}


def smoke_run() -> dict:
    """Run the pinned smoke scenario; return its benchmark payload."""
    return longrun_benchmark(SMOKE_SPEC)


def smoke_check(payload: dict) -> List[str]:
    """Mismatches between a smoke payload and the golden counters."""
    problems: List[str] = []
    report = payload["report"]
    totals = report["totals"]
    actuals: Dict[str, object] = {
        key: totals.get(key)
        for key in (
            "lookups",
            "hits",
            "stale_hits",
            "misses",
            "unavailable",
            "failovers",
            "shard_wipes",
        )
    }
    actuals["windows"] = len(report["rollups"])
    actuals["digest_filtered_lookups"] = report["digest"][
        "filtered_lookups"
    ]
    actuals["chain"] = report["chain"]
    for field, expected in EXPECTED_SMOKE.items():
        actual = actuals.get(field)
        if actual != expected:
            problems.append(
                f"{field}: expected {expected!r}, got {actual!r}"
            )
    if not payload["resume"]["match"]:
        problems.append(
            "checkpoint/resume fingerprint diverged from the straight "
            f"run ({payload['resume']['resumed_fingerprint']} != "
            f"{payload['resume']['straight_fingerprint']})"
        )
    if not payload["ab"]["stream_identical"]:
        problems.append("A/B lanes did not share the workload stream")
    if payload["ab"]["lane_b"]["totals"]["unavailable"] <= (
        payload["ab"]["lane_a"]["totals"]["unavailable"]
    ):
        problems.append(
            "replication=1 lane should see more unavailable lookups "
            "than replication=2 during the fail/heal cycle"
        )
    return problems

"""Named corpora mirroring the paper's page sets.

* ``news_sports_corpus`` — top-50 News + top-50 Sports landing pages
  (the heavy pages that dominate the evaluation).
* ``alexa_top100_corpus`` — the Alexa US top-100 overall (Fig 1, Fig 7,
  Fig 9, Sec 4.1 flux measurements).
* ``alexa_top400_sample_corpus`` — 100 random pages from the top 400
  (Sec 6.1's lighter corpus).
* ``accuracy_corpus`` — 265 pages spanning landing pages and articles from
  News/Sports providers (Sec 6.2 accuracy evaluation).

Corpora are deterministic functions of their seed, and a fraction of every
corpus is biased toward heavy dynamism so the distribution tails behave the
way the paper's do (Vroom gains vanish in the tail, Fig 13/14).
"""

from __future__ import annotations

from typing import List

from repro.calibration import (
    ALEXA_TOP100_PROFILE,
    ALEXA_TOP400_PROFILE,
    NEWS_SPORTS_PROFILE,
    SHOPPING_PROFILE,
    CorpusProfile,
)
from repro.pages.generator import PageGenerator
from repro.pages.page import PageBlueprint

#: Fraction of pages given heavy dynamic content (tail pages).
_HEAVY_DYNAMIC_FRAC = 0.12
_HEAVY_DYNAMIC_BIAS = 2.6


def _build(
    profile: CorpusProfile, prefix: str, count: int, seed: int
) -> List[PageBlueprint]:
    generator = PageGenerator(profile, seed=seed)
    heavy_every = max(1, int(round(1.0 / _HEAVY_DYNAMIC_FRAC)))
    pages = []
    for index in range(count):
        bias = _HEAVY_DYNAMIC_BIAS if index % heavy_every == heavy_every - 1 else 1.0
        pages.append(generator.generate(f"{prefix}{index}", dynamic_bias=bias))
    return pages


def news_sports_corpus(count: int = 100, seed: int = 1701) -> List[PageBlueprint]:
    """Top-50 News + top-50 Sports landing pages (default 100 pages)."""
    half = count // 2
    news = _build(NEWS_SPORTS_PROFILE, "news", half, seed)
    sports = _build(NEWS_SPORTS_PROFILE, "sports", count - half, seed + 1)
    return news + sports


def alexa_top100_corpus(count: int = 100, seed: int = 2401) -> List[PageBlueprint]:
    """The Alexa US top-100 landing pages."""
    return _build(ALEXA_TOP100_PROFILE, "alexa", count, seed)


def alexa_top400_sample_corpus(
    count: int = 100, seed: int = 3301
) -> List[PageBlueprint]:
    """100 randomly chosen pages from the Alexa top-400."""
    return _build(ALEXA_TOP400_PROFILE, "a400_", count, seed)


def shopping_corpus(count: int = 50, seed: int = 5601) -> List[PageBlueprint]:
    """Shopping-site landing pages (high content churn; Sec 4.1's example
    of flux that offline-only resolution cannot track)."""
    return _build(SHOPPING_PROFILE, "shop", count, seed)


def accuracy_corpus(count: int = 265, seed: int = 4501) -> List[PageBlueprint]:
    """265 News/Sports pages of varied types (Sec 6.2)."""
    landing = _build(NEWS_SPORTS_PROFILE, "land", count // 2, seed)
    articles = _build(NEWS_SPORTS_PROFILE, "artcl", count - count // 2, seed + 7)
    return landing + articles
